"""Unit and property tests for the batch execution tier.

The full-system bit-identity proof lives in
``tests/test_hot_path_equivalence.py``; this module pins the batch
tier's building blocks in isolation — the exact-rounding clock
charge, the batched recency replay per replacement policy, the
membership stamps and delta journal the tag-store mirrors rely on,
the refill-extension scanner, the policy gate — and the windowed
batch/scalar interleave property: running a trace as any alternation
of batch and scalar windows leaves every counter and result
bit-identical to the seed reference path.
"""

import random

import numpy as np
import pytest

from repro.cache.cache import SetAssociativeCache
from repro.config.presets import default_config
from repro.core.batch import (
    BatchExecutor,
    batch_supported,
    charge_clock_run,
    last_touch_order,
)
from repro.core.results import RunResult
from repro.core.system import FamSystem
from repro.experiments.bench import hot_loop_trace
from repro.experiments.runner import (
    RunSettings,
    _result_to_dict,
    build_traces,
)

SETTINGS = RunSettings(n_events=2000, footprint_scale=0.01, seed=5)


# ----------------------------------------------------------------------
# Clock charge: bit-identical accumulation
# ----------------------------------------------------------------------
class TestChargeClockRun:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_scalar_accumulation_bitwise(self, seed):
        rng = random.Random(seed)
        start = rng.random() * 1e9
        gaps = [rng.randrange(0, 400) for _ in range(rng.randrange(1, 3000))]
        slot_ns = 0.0625 / rng.randrange(1, 9)
        lat1 = rng.choice((2.0, 1.5, 3.25))
        expected = start
        for gap in gaps:
            expected = expected + gap * slot_ns
            expected = expected + lat1
        gaps_ns = np.asarray(gaps, dtype=np.int64) * slot_ns
        got = charge_clock_run(start, gaps_ns, lat1)
        assert got == expected  # bit-identical, not approx

    def test_single_event(self):
        got = charge_clock_run(10.0, np.array([3]) * 0.5, 2.0)
        assert got == (10.0 + 3 * 0.5) + 2.0


# ----------------------------------------------------------------------
# Last-touch ordering and batched recency replay
# ----------------------------------------------------------------------
class TestBatchedRecency:
    def test_last_touch_order(self):
        keys = np.array([5, 3, 5, 9, 3, 7], dtype=np.int64)
        # Last occurrences: 5@2, 9@3, 3@4, 7@5.
        assert last_touch_order(keys) == [5, 9, 3, 7]

    def test_last_touch_order_single_key(self):
        assert last_touch_order(np.array([4, 4, 4], dtype=np.int64)) == [4]

    @pytest.mark.parametrize("policy", ("lru", "fifo", "random"))
    @pytest.mark.parametrize("seed", range(3))
    def test_touch_run_equals_per_event_hits(self, policy, seed):
        """Random resident working sets, random hit sequences: batched
        replay must leave contents, order and counters identical to
        per-event ``get_line`` probes."""
        rng = random.Random(100 * seed + hash(policy) % 17)
        scalar = SetAssociativeCache("s", 4, 4, replacement=policy,
                                     seed=seed)
        batched = SetAssociativeCache("b", 4, 4, replacement=policy,
                                      seed=seed)
        per_set = {index: 0 for index in range(4)}
        resident = []
        for key in rng.sample(range(64), 40):
            if per_set[key % 4] < 4:       # keep every pick resident
                per_set[key % 4] += 1
                resident.append(key)
            if len(resident) == 12:
                break
        for key in resident:
            scalar.fill_line(key, key * 2)
            batched.fill_line(key, key * 2)
        run = [rng.choice(resident) for _ in range(50)]
        for key in run:
            assert scalar.get_line(key) is not None
        batched.touch_run(len(run),
                          last_touch_order(np.asarray(run, dtype=np.int64)))
        assert scalar._sets == batched._sets  # same order per set
        assert (scalar.hits, scalar.misses) == (batched.hits,
                                                batched.misses)
        # RNG untouched by hits under every policy.
        assert scalar._rng.getstate() == batched._rng.getstate()

    def test_hierarchy_l1_hit_run_sets_dirty_bits(self):
        config = default_config()
        from repro.cache.hierarchy import CacheHierarchy

        scalar = CacheHierarchy(config.l1, config.l2, config.l3, "s")
        batched = CacheHierarchy(config.l1, config.l2, config.l3, "b")
        blocks = [3, 9, 3, 17, 9]
        writes = [False, True, True, False, False]
        for hierarchy in (scalar, batched):
            for block in set(blocks):
                hierarchy._l1.fill_line(block, True)
        for block, write in zip(blocks, writes):
            assert scalar.access_fast(block, write)[0] == 1
        written = sorted({b for b, w in zip(blocks, writes) if w})
        batched.l1_hit_run(
            len(blocks),
            last_touch_order(np.asarray(blocks, dtype=np.int64)),
            written)
        assert scalar._l1._sets == batched._l1._sets
        assert scalar._l1.hits == batched._l1.hits


# ----------------------------------------------------------------------
# Membership stamps (mirror staleness detection)
# ----------------------------------------------------------------------
class TestMembershipStamp:
    def test_hits_and_replace_in_place_do_not_bump(self):
        cache = SetAssociativeCache("c", 2, 2)
        cache.fill_line(1, "a")
        stamp = cache.membership_stamp
        cache.get_line(1)
        cache.get_line(99)           # miss, no state change
        cache.fill_line(1, "b")      # replace in place
        cache.touch_run(3, [1])
        assert cache.membership_stamp == stamp

    def test_membership_changes_bump(self):
        cache = SetAssociativeCache("c", 2, 1)
        stamp = cache.membership_stamp
        cache.fill_line(1, "a")      # new key
        assert cache.membership_stamp > stamp
        stamp = cache.membership_stamp
        cache.fill_line(3, "b")      # same set, evicts key 1
        assert cache.membership_stamp > stamp
        stamp = cache.membership_stamp
        assert cache.invalidate(3)
        assert cache.membership_stamp > stamp
        stamp = cache.membership_stamp
        assert not cache.invalidate(3)  # absent: no membership change
        assert cache.membership_stamp == stamp
        cache.fill_line(5, "c")
        stamp = cache.membership_stamp
        cache.clear()
        assert cache.membership_stamp > stamp


# ----------------------------------------------------------------------
# Policy/architecture gate
# ----------------------------------------------------------------------
class TestBatchGate:
    def test_default_config_is_batch_capable(self):
        system = FamSystem(default_config(), "deact-n", seed=1)
        assert batch_supported(system.nodes[0])
        assert system.batch_capable()

    def test_unknown_policy_bails_out_to_fast(self):
        traces = build_traces("mg", 1, SETTINGS)
        seed = SETTINGS.seed * 31 + 5
        reference = FamSystem(default_config(), "i-fam", seed=seed).run(
            traces, benchmark="mg", reference=True)
        system = FamSystem(default_config(), "i-fam", seed=seed)
        # Simulate a future replacement policy outside the proved
        # envelope: the gate must reroute batch mode to the scalar
        # fast tier, not charge unproved runs.
        system.nodes[0].caches._l1.policy_name = "plru"
        assert not system.batch_capable()
        result = system.run(traces, benchmark="mg", mode="batch")
        assert _result_to_dict(result) == _result_to_dict(reference)

    def test_architecture_opt_out_bails_out_to_fast(self):
        traces = build_traces("mg", 1, SETTINGS)
        seed = SETTINGS.seed * 31 + 5
        reference = FamSystem(default_config(), "e-fam", seed=seed).run(
            traces, benchmark="mg", reference=True)
        system = FamSystem(default_config(), "e-fam", seed=seed)
        system.architecture.supports_batch_runs = False
        assert not system.batch_capable()
        result = system.run(traces, benchmark="mg", mode="batch")
        assert _result_to_dict(result) == _result_to_dict(reference)

    def test_unknown_mode_rejected(self):
        from repro.errors import ConfigError

        traces = build_traces("mg", 1, SETTINGS)
        with pytest.raises(ConfigError):
            FamSystem(default_config(), "e-fam").run(
                traces, benchmark="mg", mode="warp")


# ----------------------------------------------------------------------
# Windowed batch/scalar interleave (the mid-trace property)
# ----------------------------------------------------------------------
def _drive_windowed(system, trace, widths, benchmark):
    """Run ``trace`` on a single-node system as alternating
    batch-tier / scalar-tier windows of the given widths (cycled),
    then assemble the same RunResult ``FamSystem.run`` would."""
    node = system.nodes[0]
    decoded = trace.decoded(system.config.page_bytes,
                            system.config.block_bytes)
    arrays = trace.decoded_arrays(system.config.page_bytes,
                                  system.config.block_bytes)
    executor = BatchExecutor(node, decoded, arrays)
    cursor = 0
    index = 0
    n = len(decoded)
    while cursor < n:
        width = widths[index % len(widths)]
        stop = min(cursor + width, n)
        if index % 2 == 0:
            executor.run(cursor, stop)
        else:
            node.run_decoded(decoded, cursor, stop)
        cursor = stop
        index += 1
    node.drain()
    return RunResult(
        architecture=system.architecture.key, benchmark=benchmark,
        nodes=[node.metrics()],
        fam_counters=system.fam.stats.snapshot(),
        fabric_counters=system.fabric.stats.snapshot())


class TestWindowedInterleave:
    @pytest.mark.parametrize("widths", [(1,), (7, 3), (64, 1, 9),
                                        (500, 333)])
    def test_alternating_windows_match_reference(self, widths):
        trace = hot_loop_trace(SETTINGS.n_events, seed=21)
        seed = 909
        reference = FamSystem(default_config(), "deact-w", seed=seed).run(
            [trace], benchmark="hot-loop", reference=True)
        system = FamSystem(default_config(), "deact-w", seed=seed)
        windowed = _drive_windowed(system, trace, widths, "hot-loop")
        assert _result_to_dict(windowed) == _result_to_dict(reference)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_windows_match_reference_and_telemetry(self, seed):
        rng = random.Random(seed)
        widths = tuple(rng.randrange(1, 400) for _ in range(8))
        trace = build_traces("bc", 1, SETTINGS)[0]
        system_seed = SETTINGS.seed * 31 + 5
        ref_system = FamSystem(default_config(), "deact-n",
                               seed=system_seed)
        reference = ref_system.run([trace], benchmark="bc",
                                   reference=True)
        system = FamSystem(default_config(), "deact-n", seed=system_seed)
        windowed = _drive_windowed(system, trace, widths, "bc")
        assert _result_to_dict(windowed) == _result_to_dict(reference)
        # Raw telemetry counters, not just the serialized result: the
        # batch tier must keep every probe census in lockstep.
        ref_node = ref_system.nodes[0]
        node = system.nodes[0]
        assert node.mmu.tlb.l1.hits == ref_node.mmu.tlb.l1.hits
        assert node.mmu.tlb.l1.misses == ref_node.mmu.tlb.l1.misses
        assert node.mmu.tlb.l2.accesses == ref_node.mmu.tlb.l2.accesses
        assert node.caches._l1.hits == ref_node.caches._l1.hits
        assert node.caches._l1.misses == ref_node.caches._l1.misses
        assert node.mmu.walks == ref_node.mmu.walks
        assert node.window.admissions == ref_node.window.admissions
        assert node.tag_store_probes() == ref_node.tag_store_probes()

    def test_batch_tier_actually_batches(self):
        """Guard against a vacuous proof: on the hit-dominated trace
        the batch tier must charge most events through runs, not fall
        back to scalar throughout."""
        charged = []

        class SpyExecutor(BatchExecutor):
            def _handle_hit_run(self, cursor, k, pblocks):
                charged.append(k)
                super()._handle_hit_run(cursor, k, pblocks)

        trace = hot_loop_trace(4000, seed=3)
        system = FamSystem(default_config(), "e-fam", seed=5)
        node = system.nodes[0]
        decoded = trace.decoded(4096, 64)
        arrays = trace.decoded_arrays(4096, 64)
        SpyExecutor(node, decoded, arrays).run(0, len(decoded))
        assert sum(charged) > len(decoded) // 2
        assert max(charged) >= 256


# ----------------------------------------------------------------------
# Delta-journal mirrors (incremental sync == from-scratch rebuild)
# ----------------------------------------------------------------------
class TestDeltaJournalMirror:
    """Property test: under random fill/invalidate/clear sequences —
    including journal overflow from a deliberately tiny cap — a mirror
    synced through :func:`_sync_mirror` stays bit-identical to one
    rebuilt from scratch, for both the payload-tracking (TLB) and
    key-only (data) mirror flavours."""

    @pytest.mark.parametrize("policy", ("lru", "fifo", "random"))
    @pytest.mark.parametrize("seed", range(4))
    def test_mirror_matches_rebuild_under_random_ops(self, policy, seed):
        from repro.core.runplan import (_Mirror, _rebuild_mirror,
                                        _sync_mirror)

        rng = random.Random(1000 * seed + len(policy))
        store = SetAssociativeCache("s", 4, 2, replacement=policy,
                                    seed=seed)
        store.enable_journal(cap=24)  # tiny: force overflow rebuilds
        valued = _Mirror(True)
        keyed = _Mirror(False)

        def check(mirror):
            fresh = _Mirror(mirror.values is not None)
            _rebuild_mirror(fresh, store)
            assert mirror.keys.tolist() == fresh.keys.tolist()
            if mirror.values is not None:
                assert mirror.values.tolist() == fresh.values.tolist()

        for _ in range(400):
            op = rng.random()
            key = rng.randrange(48)
            if op < 0.55:
                store.fill_line(key, key * 7 + seed)
            elif op < 0.80:
                store.invalidate(key)
            elif op < 0.90:
                store.get_line(key)
            elif op < 0.97:
                residue = key % 5
                store.invalidate_where(lambda k, _v: k % 5 == residue)
            else:
                store.clear()
            # Different sync cadences: the two mirrors trail the
            # journal head by different amounts, so delta batches of
            # many shapes (including empty and overflowed) occur.
            if rng.random() < 0.35:
                _sync_mirror(valued, store)
                check(valued)
            if rng.random() < 0.10:
                _sync_mirror(keyed, store)
                check(keyed)
        _sync_mirror(valued, store)
        _sync_mirror(keyed, store)
        check(valued)
        check(keyed)

    def test_sync_without_changes_is_noop(self):
        from repro.core.runplan import _Mirror, _sync_mirror

        store = SetAssociativeCache("s", 2, 2)
        store.enable_journal()
        store.fill_line(3, "x")
        mirror = _Mirror(False)
        _sync_mirror(mirror, store)
        keys_before = mirror.keys
        store.get_line(3)            # recency only: not journaled
        _sync_mirror(mirror, store)
        assert mirror.keys is keys_before  # untouched, not rebuilt


# ----------------------------------------------------------------------
# Refill-extended runs (scan across L2 hits under a mirror overlay)
# ----------------------------------------------------------------------
def _flat_trace(vaddrs):
    from repro.workloads.trace import Trace

    n = len(vaddrs)
    return Trace("ext-kernel", [0] * n, vaddrs, [False] * n, [False] * n)


def _run_with_plan_spy(trace, benchmark):
    """Drive a fresh system's batch tier with a segment-inspecting
    executor; returns ``(result_dict, n_ext_events)``."""
    ext_events = []

    class SpyExecutor(BatchExecutor):
        def _handle_extension(self, pos):
            ext_events.append(pos)
            super()._handle_extension(pos)

    system = FamSystem(default_config(), "e-fam", seed=5)
    node = system.nodes[0]
    decoded = trace.decoded(4096, 64)
    arrays = trace.decoded_arrays(4096, 64)
    SpyExecutor(node, decoded, arrays).run(0, len(decoded))
    node.drain()
    result = RunResult(
        architecture=system.architecture.key, benchmark=benchmark,
        nodes=[node.metrics()],
        fam_counters=system.fam.stats.snapshot(),
        fabric_counters=system.fabric.stats.snapshot())
    return _result_to_dict(result), len(ext_events)


class TestRefillExtendedRuns:
    """Runs must continue across TLB-L2 and data-L2 hits (the overlay
    replays the predicted L1 refill), and the extension events must be
    charged bit-identically to the scalar replay."""

    def test_data_l2_refills_extend_runs(self):
        # Hot blocks that fit L1 plus excursions to a small set of
        # page-aligned addresses.  Page-aligned physical blocks all
        # map to data-L1 set 0 (``pblock % n_sets == 0`` whenever
        # blocks-per-page is a multiple of ``n_sets``), so twice the
        # associativity of them thrash that one L1 set while staying
        # resident in the much larger L2: each excursion is a
        # data-L2 hit mid-run.
        probe = FamSystem(default_config(), "e-fam", seed=5).nodes[0]
        l1 = probe.caches._l1
        l1_cap = l1.n_sets * l1.associativity
        assert (4096 // 64) % l1.n_sets == 0
        rng = random.Random(42)
        base = 0x2000_0000
        hot = [base + i * 64 for i in range(l1_cap // 2)]
        medium_base = base + l1_cap * 64
        medium = [medium_base + i * 4096
                  for i in range(2 * l1.associativity)]
        vaddrs = [rng.choice(hot) if rng.random() < 0.92
                  else rng.choice(medium) for _ in range(6000)]
        trace = _flat_trace(vaddrs)
        reference = FamSystem(default_config(), "e-fam", seed=5).run(
            [trace], benchmark="ext-kernel", reference=True)
        batch, n_ext = _run_with_plan_spy(trace, "ext-kernel")
        assert batch == _result_to_dict(reference)
        assert n_ext > 50  # the envelope actually widened

    def test_tlb_l2_refills_extend_runs(self):
        # One block per page, with a hot page set that stays TLB-L1
        # resident and a warm set that overflows L1 into the L2 TLB:
        # data always hits L1 after warmup, while the occasional warm
        # page costs a TLB-L2 refill mid-run.  Hot draws dominate so
        # pure runs bank enough hits for the scanner to keep
        # speculating extensions (the EXTENSION_PURE_RATIO guard).
        probe = FamSystem(default_config(), "e-fam", seed=5).nodes[0]
        tlb_l1 = probe.mmu.tlb.l1
        tlb_l2 = probe.mmu.tlb.l2
        t1_cap = tlb_l1.n_sets * tlb_l1.associativity
        n_pages = t1_cap + t1_cap // 2
        assert tlb_l2.n_sets * tlb_l2.associativity >= n_pages
        l1 = probe.caches._l1
        assert l1.n_sets * l1.associativity >= n_pages
        rng = random.Random(7)
        base = 0x3000_0000
        # Stagger each page's single block so the data-L1 sets spread
        # (page-aligned addresses would all collide into set 0 and the
        # data side, not the TLB, would end every run).
        pages = [base + i * 4096 + (i * 64) % 4096
                 for i in range(n_pages)]
        hot, warm = pages[:t1_cap // 2], pages[t1_cap // 2:]
        vaddrs = [rng.choice(hot) if rng.random() < 0.92
                  else rng.choice(warm) for _ in range(6000)]
        trace = _flat_trace(vaddrs)
        reference = FamSystem(default_config(), "e-fam", seed=5).run(
            [trace], benchmark="ext-kernel", reference=True)
        batch, n_ext = _run_with_plan_spy(trace, "ext-kernel")
        assert batch == _result_to_dict(reference)
        assert n_ext > 50

    def test_tlb_l2_refills_extend_runs_multi_node(self, monkeypatch):
        # The same hot/warm TLB-overflow geometry, but one trace per
        # node through the heap-interleaved driver: a run collapsed
        # on one node must not reorder any shared-state access of the
        # others, including when the run contains speculated TLB-L2
        # refill extensions.
        from repro.config.presets import with_nodes

        probe = FamSystem(default_config(), "e-fam", seed=5).nodes[0]
        tlb_l1 = probe.mmu.tlb.l1
        t1_cap = tlb_l1.n_sets * tlb_l1.associativity
        n_pages = t1_cap + t1_cap // 2
        base = 0x3000_0000
        pages = [base + i * 4096 + (i * 64) % 4096
                 for i in range(n_pages)]
        hot, warm = pages[:t1_cap // 2], pages[t1_cap // 2:]
        traces = []
        for node_seed in (7, 8, 9):
            rng = random.Random(node_seed)
            traces.append(_flat_trace(
                [rng.choice(hot) if rng.random() < 0.92
                 else rng.choice(warm) for _ in range(3000)]))
        ext_events = []
        orig_handle_extension = BatchExecutor._handle_extension

        def spy(self, pos):
            ext_events.append(pos)
            orig_handle_extension(self, pos)

        monkeypatch.setattr(BatchExecutor, "_handle_extension", spy)
        config = with_nodes(default_config(), 3)
        reference = FamSystem(config, "e-fam", seed=5).run(
            traces, benchmark="ext-kernel", reference=True)
        batch = FamSystem(config, "e-fam", seed=5).run(
            traces, benchmark="ext-kernel", mode="batch")
        assert _result_to_dict(batch) == _result_to_dict(reference)
        assert len(ext_events) > 50
