"""Tests for the set-associative cache core."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.cache import SetAssociativeCache
from repro.errors import ConfigError


class TestBasicOperation:
    def test_miss_then_fill_then_hit(self):
        cache = SetAssociativeCache("c", 4, 2)
        assert not cache.access(5).hit
        cache.fill(5, "payload")
        result = cache.access(5)
        assert result.hit
        assert result.value == "payload"

    def test_probe_does_not_count(self):
        cache = SetAssociativeCache("c", 4, 2)
        cache.fill(5, True)
        cache.probe(5)
        cache.probe(6)
        assert cache.hits == 0
        assert cache.misses == 0

    def test_contains(self):
        cache = SetAssociativeCache("c", 4, 2)
        cache.fill(8, 1)
        assert 8 in cache
        assert 9 not in cache

    def test_len_counts_lines(self):
        cache = SetAssociativeCache("c", 4, 2)
        for key in range(5):
            cache.fill(key, key)
        assert len(cache) == 5

    def test_refill_replaces_in_place(self):
        cache = SetAssociativeCache("c", 4, 2)
        cache.fill(3, "old")
        cache.fill(3, "new")
        assert cache.access(3).value == "new"
        assert len(cache) == 1

    def test_invalidate(self):
        cache = SetAssociativeCache("c", 4, 2)
        cache.fill(3, 1)
        assert cache.invalidate(3) is True
        assert cache.invalidate(3) is False
        assert 3 not in cache

    def test_clear(self):
        cache = SetAssociativeCache("c", 4, 2)
        for key in range(8):
            cache.fill(key, key)
        cache.clear()
        assert len(cache) == 0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache("c", 0, 2)
        with pytest.raises(ConfigError):
            SetAssociativeCache("c", 4, 0)
        with pytest.raises(ConfigError):
            SetAssociativeCache("c", 4, 2, replacement="plru")


class TestSetMapping:
    def test_keys_map_to_sets_by_modulo(self):
        cache = SetAssociativeCache("c", 4, 1)
        cache.fill(0, "a")
        cache.fill(4, "b")  # same set as 0, 1-way: evicts
        assert 0 not in cache
        assert 4 in cache

    def test_different_sets_do_not_conflict(self):
        cache = SetAssociativeCache("c", 4, 1)
        cache.fill(0, "a")
        cache.fill(1, "b")
        assert 0 in cache and 1 in cache


class TestLruReplacement:
    def test_evicts_least_recently_used(self):
        cache = SetAssociativeCache("c", 1, 2)
        cache.fill(1, "a")
        cache.fill(2, "b")
        cache.access(1)  # promote 1
        result = cache.fill(3, "c")
        assert result.evicted_key == 2

    def test_fill_promotes(self):
        cache = SetAssociativeCache("c", 1, 2)
        cache.fill(1, "a")
        cache.fill(2, "b")
        cache.fill(1, "a2")  # refill promotes 1
        result = cache.fill(3, "c")
        assert result.evicted_key == 2

    def test_eviction_reports_payload(self):
        cache = SetAssociativeCache("c", 1, 1)
        cache.fill(1, "victim")
        result = cache.fill(2, "new")
        assert result.evicted_value == "victim"
        assert cache.evictions == 1


class TestFifoReplacement:
    def test_hits_do_not_promote(self):
        cache = SetAssociativeCache("c", 1, 2, replacement="fifo")
        cache.fill(1, "a")
        cache.fill(2, "b")
        cache.access(1)  # FIFO ignores the touch
        result = cache.fill(3, "c")
        assert result.evicted_key == 1


class TestRandomReplacement:
    def test_deterministic_with_seed(self):
        def run(seed):
            cache = SetAssociativeCache("c", 1, 4, replacement="random",
                                        seed=seed)
            for key in range(10):
                cache.fill(key, key)
            return sorted(k for k in range(10) if k in cache)
        assert run(1) == run(1)

    def test_evicts_some_resident_line(self):
        cache = SetAssociativeCache("c", 1, 2, replacement="random", seed=3)
        cache.fill(1, "a")
        cache.fill(2, "b")
        result = cache.fill(3, "c")
        assert result.evicted_key in (1, 2)


class TestDirtyTracking:
    def test_write_marks_dirty(self):
        cache = SetAssociativeCache("c", 1, 1)
        cache.fill(1, True, dirty=False)
        cache.access(1, write=True)
        result = cache.fill(2, True)
        assert result.evicted_dirty is True

    def test_clean_eviction(self):
        cache = SetAssociativeCache("c", 1, 1)
        cache.fill(1, True)
        result = cache.fill(2, True)
        assert result.evicted_dirty is False


class TestInvalidateWhere:
    def test_predicate_invalidation(self):
        cache = SetAssociativeCache("c", 4, 4)
        for key in range(8):
            cache.fill(key, key * 10)
        dropped = cache.invalidate_where(lambda k, v: k % 2 == 0)
        assert dropped == 4
        assert len(cache) == 4
        assert 1 in cache and 0 not in cache


class TestStatistics:
    def test_hit_rate(self):
        cache = SetAssociativeCache("c", 4, 2)
        cache.fill(1, True)
        cache.access(1)
        cache.access(2)
        assert cache.hit_rate == 0.5

    def test_reset_stats_keeps_contents(self):
        cache = SetAssociativeCache("c", 4, 2)
        cache.fill(1, True)
        cache.access(1)
        cache.reset_stats()
        assert cache.hits == 0
        assert 1 in cache


class TestCapacityInvariants:
    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=8),
           st.lists(st.integers(min_value=0, max_value=500),
                    min_size=1, max_size=200))
    @settings(max_examples=60)
    def test_occupancy_never_exceeds_geometry(self, n_sets, assoc, keys):
        """Invariant: each set holds at most ``associativity`` lines."""
        cache = SetAssociativeCache("c", n_sets, assoc)
        for key in keys:
            cache.fill(key, key)
        assert len(cache) <= n_sets * assoc
        for lines in cache._sets:
            assert len(lines) <= assoc

    @given(st.lists(st.integers(min_value=0, max_value=100),
                    min_size=1, max_size=200))
    @settings(max_examples=60)
    def test_most_recent_fill_always_resident(self, keys):
        """Invariant: the line just filled is never the one evicted."""
        cache = SetAssociativeCache("c", 2, 2)
        for key in keys:
            cache.fill(key, key)
            assert key in cache

    @given(st.lists(st.integers(min_value=0, max_value=30),
                    min_size=1, max_size=300))
    @settings(max_examples=40)
    def test_hits_plus_misses_equals_accesses(self, keys):
        cache = SetAssociativeCache("c", 2, 4)
        for key in keys:
            if not cache.access(key).hit:
                cache.fill(key, key)
        assert cache.hits + cache.misses == len(keys)
