"""Tests for the deterministic event loop."""

import pytest

from repro.errors import ConfigError
from repro.sim.engine import EventLoop


class TestEventLoop:
    def test_fires_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(3.0, lambda t: fired.append(("c", t)))
        loop.schedule(1.0, lambda t: fired.append(("a", t)))
        loop.schedule(2.0, lambda t: fired.append(("b", t)))
        loop.run()
        assert fired == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_ties_fire_in_schedule_order(self):
        loop = EventLoop()
        fired = []
        for tag in "abc":
            loop.schedule(5.0, lambda t, tag=tag: fired.append(tag))
        loop.run()
        assert fired == ["a", "b", "c"]

    def test_now_tracks_last_event(self):
        loop = EventLoop()
        loop.schedule(7.5, lambda t: None)
        loop.run()
        assert loop.now == 7.5

    def test_until_bound(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda t: fired.append(1))
        loop.schedule(10.0, lambda t: fired.append(10))
        loop.run(until=5.0)
        assert fired == [1]
        assert len(loop) == 1

    def test_max_events(self):
        loop = EventLoop()
        fired = []
        for i in range(5):
            loop.schedule(float(i), lambda t: fired.append(t))
        loop.run(max_events=2)
        assert len(fired) == 2

    def test_events_can_schedule_events(self):
        loop = EventLoop()
        fired = []

        def first(t):
            fired.append("first")
            loop.schedule(t + 1.0, lambda t2: fired.append("second"))

        loop.schedule(0.0, first)
        loop.run()
        assert fired == ["first", "second"]

    def test_rejects_scheduling_in_past(self):
        loop = EventLoop()

        def callback(t):
            with pytest.raises(ConfigError):
                loop.schedule(t - 1.0, lambda t2: None)

        loop.schedule(5.0, callback)
        loop.run()

    def test_step(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda t: fired.append(t))
        assert loop.step() is True
        assert loop.step() is False
        assert fired == [1.0]

    def test_event_counter(self):
        loop = EventLoop()
        for i in range(3):
            loop.schedule(float(i), lambda t: None)
        loop.run()
        assert loop.events_fired == 3


class TestRunUntilWindowAdvance:
    """Regression: ``run(until=...)`` used to leave ``now`` at the last
    fired event, so back-to-back windowed runs could schedule (and
    mis-order) zero-latency events *between* the two window ends."""

    def test_exhausted_window_advances_now_to_until(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda t: None)
        loop.run(until=5.0)
        assert loop.now == 5.0

    def test_empty_window_advances_now(self):
        loop = EventLoop()
        loop.schedule(10.0, lambda t: None)
        loop.run(until=5.0)
        assert loop.now == 5.0
        assert len(loop) == 1

    def test_between_window_scheduling_rejected(self):
        # An event at 4.0 scheduled after the [0, 5] window closed
        # would fire out of order relative to everything the first
        # window already processed.
        loop = EventLoop()
        loop.schedule(1.0, lambda t: None)
        loop.run(until=5.0)
        with pytest.raises(ConfigError, match="cannot schedule"):
            loop.schedule(4.0, lambda t: None)

    def test_back_to_back_windows_order_zero_latency_events(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda t: fired.append(("a", t)))
        loop.run(until=5.0)
        # Post-window work scheduled "now" lands at the window end,
        # after everything the first window processed.
        loop.schedule(loop.now, lambda t: fired.append(("b", t)))
        loop.schedule(6.0, lambda t: fired.append(("c", t)))
        loop.run(until=10.0)
        assert fired == [("a", 1.0), ("b", 5.0), ("c", 6.0)]
        assert loop.now == 10.0

    def test_max_events_stop_does_not_advance(self):
        loop = EventLoop()
        for when in (1.0, 2.0, 3.0):
            loop.schedule(when, lambda t: None)
        loop.run(until=5.0, max_events=2)
        assert loop.now == 2.0  # work pending inside the window
        loop.run(until=5.0)
        assert loop.now == 5.0

    def test_run_without_until_keeps_last_event_time(self):
        loop = EventLoop()
        loop.schedule(7.5, lambda t: None)
        loop.run()
        assert loop.now == 7.5
