"""Tests for the deterministic event loop."""

import pytest

from repro.errors import ConfigError
from repro.sim.engine import EventLoop


class TestEventLoop:
    def test_fires_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(3.0, lambda t: fired.append(("c", t)))
        loop.schedule(1.0, lambda t: fired.append(("a", t)))
        loop.schedule(2.0, lambda t: fired.append(("b", t)))
        loop.run()
        assert fired == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_ties_fire_in_schedule_order(self):
        loop = EventLoop()
        fired = []
        for tag in "abc":
            loop.schedule(5.0, lambda t, tag=tag: fired.append(tag))
        loop.run()
        assert fired == ["a", "b", "c"]

    def test_now_tracks_last_event(self):
        loop = EventLoop()
        loop.schedule(7.5, lambda t: None)
        loop.run()
        assert loop.now == 7.5

    def test_until_bound(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda t: fired.append(1))
        loop.schedule(10.0, lambda t: fired.append(10))
        loop.run(until=5.0)
        assert fired == [1]
        assert len(loop) == 1

    def test_max_events(self):
        loop = EventLoop()
        fired = []
        for i in range(5):
            loop.schedule(float(i), lambda t: fired.append(t))
        loop.run(max_events=2)
        assert len(fired) == 2

    def test_events_can_schedule_events(self):
        loop = EventLoop()
        fired = []

        def first(t):
            fired.append("first")
            loop.schedule(t + 1.0, lambda t2: fired.append("second"))

        loop.schedule(0.0, first)
        loop.run()
        assert fired == ["first", "second"]

    def test_rejects_scheduling_in_past(self):
        loop = EventLoop()

        def callback(t):
            with pytest.raises(ConfigError):
                loop.schedule(t - 1.0, lambda t2: None)

        loop.schedule(5.0, callback)
        loop.run()

    def test_step(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda t: fired.append(t))
        assert loop.step() is True
        assert loop.step() is False
        assert fired == [1.0]

    def test_event_counter(self):
        loop = EventLoop()
        for i in range(3):
            loop.schedule(float(i), lambda t: None)
        loop.run()
        assert loop.events_fired == 3
