"""Tests for the fabric network and memory devices."""

import pytest

from repro.config.system import FabricConfig, FamConfig, GIB, LocalMemoryConfig
from repro.fabric.network import FabricNetwork
from repro.mem.device import DramDevice, NvmDevice
from repro.mem.request import MemoryRequest, RequestKind


class TestFabricNetwork:
    def test_one_way_latency_matches_table_ii(self):
        fabric = FabricNetwork(FabricConfig())
        assert fabric.one_way_latency_ns == 500.0

    def test_hop_latencies(self):
        fabric = FabricNetwork(FabricConfig(node_to_stu_ns=100,
                                            stu_to_fam_ns=400,
                                            port_occupancy_ns=0))
        assert fabric.node_to_stu_arrival(0.0) == 100.0
        assert fabric.stu_to_fam_arrival(100.0) == 500.0
        assert fabric.fam_to_stu_arrival(0.0) == 400.0
        assert fabric.stu_to_node_arrival(0.0) == 100.0

    def test_port_contention_serializes(self):
        fabric = FabricNetwork(FabricConfig(port_occupancy_ns=20))
        first = fabric.stu_to_fam_arrival(0.0)
        second = fabric.stu_to_fam_arrival(0.0)
        assert second == first + 20.0

    def test_response_path_uncontended(self):
        fabric = FabricNetwork(FabricConfig(port_occupancy_ns=20))
        a = fabric.fam_to_stu_arrival(0.0)
        b = fabric.fam_to_stu_arrival(0.0)
        assert a == b

    def test_with_total_latency_preserves_sum(self):
        config = FabricConfig.with_total_latency(1000.0)
        assert config.total_latency_ns == pytest.approx(1000.0)

    def test_composite_node_to_fam(self):
        fabric = FabricNetwork(FabricConfig(port_occupancy_ns=0))
        assert fabric.node_to_fam_arrival(0.0) == 500.0

    def test_message_counters(self):
        fabric = FabricNetwork(FabricConfig())
        fabric.node_to_fam_arrival(0.0)
        assert fabric.stats.get("node_to_stu") == 1
        assert fabric.stats.get("stu_to_fam") == 1


class TestDramDevice:
    def test_access_latency(self):
        dram = DramDevice(LocalMemoryConfig(access_ns=50))
        assert dram.access(0, 0.0) == 50.0

    def test_bank_conflict(self):
        dram = DramDevice(LocalMemoryConfig(access_ns=50, banks=2))
        dram.access(0, 0.0)
        assert dram.access(128, 0.0) == 100.0  # same bank

    def test_bank_parallelism(self):
        dram = DramDevice(LocalMemoryConfig(access_ns=50, banks=2))
        dram.access(0, 0.0)
        assert dram.access(64, 0.0) == 50.0  # other bank

    def test_counters(self):
        dram = DramDevice(LocalMemoryConfig())
        dram.access(0, 0.0, is_write=True)
        dram.access(64, 0.0, kind=RequestKind.NODE_PTW)
        snap = dram.snapshot()
        assert snap["writes"] == 1
        assert snap["at_accesses"] == 1
        assert snap["accesses"] == 2


class TestNvmDevice:
    def test_asymmetric_latency(self):
        fam = NvmDevice(FamConfig(capacity_bytes=GIB))
        assert fam.access(0, 0.0, is_write=False) == 60.0
        assert fam.access(64, 0.0, is_write=True) == 150.0

    def test_outstanding_limit_backpressure(self):
        fam = NvmDevice(FamConfig(capacity_bytes=GIB, max_outstanding=2,
                                  banks=64))
        fam.access(0, 0.0)
        fam.access(64, 0.0)
        # Third access must wait for the first completion (t=60).
        done = fam.access(128, 0.0)
        assert done >= 60.0 + 60.0

    def test_at_census(self):
        fam = NvmDevice(FamConfig(capacity_bytes=GIB))
        fam.access(0, 0.0, kind=RequestKind.DATA)
        fam.access(64, 0.0, kind=RequestKind.FAM_PTW)
        fam.access(128, 0.0, kind=RequestKind.ACM)
        assert fam.at_fraction == pytest.approx(2 / 3)
        snap = fam.snapshot()
        assert snap["kind.fam_ptw"] == 1
        assert snap["kind.acm"] == 1
        assert snap["non_at_accesses"] == 1

    def test_per_node_census(self):
        fam = NvmDevice(FamConfig(capacity_bytes=GIB))
        fam.access(0, 0.0, node_id=3)
        fam.access(64, 0.0, node_id=3)
        assert fam.snapshot()["node.3.accesses"] == 2

    def test_reset(self):
        fam = NvmDevice(FamConfig(capacity_bytes=GIB))
        fam.access(0, 0.0)
        fam.reset()
        assert fam.accesses == 0
        assert fam.access(0, 0.0) == 60.0


class TestRequestKinds:
    def test_translation_classification(self):
        assert RequestKind.NODE_PTW.is_translation
        assert RequestKind.FAM_PTW.is_translation
        assert RequestKind.ACM.is_translation
        assert not RequestKind.DATA.is_translation
        assert not RequestKind.WRITEBACK.is_translation

    def test_request_ids_monotonic(self):
        a = MemoryRequest(addr=0)
        b = MemoryRequest(addr=0)
        assert b.request_id > a.request_id

    def test_with_fam_address(self):
        req = MemoryRequest(addr=100, is_write=True, node_id=2)
        fam_req = req.with_fam_address(0xF00)
        assert fam_req.verified
        assert fam_req.addr == 0xF00
        assert fam_req.request_id == req.request_id
        assert fam_req.is_write and fam_req.node_id == 2
