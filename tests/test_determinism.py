"""Determinism and serialization-round-trip guarantees.

Parallel sweeps are only trustworthy if they are bit-identical to
serial execution, which in turn requires (a) every run to be a pure
function of its :class:`SweepJob`, (b) the result <-> dict round trip
to be lossless, and (c) the event loop to order same-timestamp events
stably.  This suite pins all three down, comparing full serialized
result dicts — not just headline metrics — so a drifting counter
anywhere in the system fails loudly.
"""

import random

import pytest

from repro.config.presets import default_config, with_nodes
from repro.core.results import NodeMetrics, RunResult
from repro.errors import ConfigError
from repro.experiments.runner import (
    ExperimentRunner,
    RunSettings,
    SweepJob,
    _result_from_dict,
    _result_to_dict,
    execute_job,
)
from repro.experiments.shardfile import (
    canonical_cache_text,
    load_manifest,
    manifest_path,
    merge_shards,
    shard_cache_path,
    spec_fingerprint,
    validate_cache,
)
from repro.experiments.sweep import SweepEngine, SweepSpec
from repro.sim.engine import EventLoop

FAST = RunSettings(n_events=1500, footprint_scale=0.01, seed=3)

#: The Figure 3 matrix (trimmed): the slowdown figure's benchmark x
#: architecture grid, which the acceptance criteria single out.
FIG3_BENCHES = ["mcf", "canl"]
FIG3_ARCHS = ["e-fam", "i-fam"]


def _sweep_dicts(jobs: int, cache_path=None) -> dict:
    engine = SweepEngine(FAST, cache_path=cache_path, jobs=jobs)
    spec = SweepSpec.build(benchmarks=FIG3_BENCHES,
                           architectures=FIG3_ARCHS)
    return {cell: _result_to_dict(result)
            for cell, result in engine.run(spec).items()}


class TestRunDeterminism:
    def test_serial_reruns_are_identical(self):
        first = ExperimentRunner(FAST).run("canl", "i-fam")
        second = ExperimentRunner(FAST).run("canl", "i-fam")
        assert _result_to_dict(first) == _result_to_dict(second)

    def test_serial_runner_matches_worker_entry_point(self):
        # The memoizing runner and the multiprocessing worker must
        # produce the same bits for the same job.  The worker payload
        # additionally carries wall-clock telemetry — measurement
        # metadata, not part of the simulated outcome — which is
        # stripped before comparing.
        runner_dict = _result_to_dict(
            ExperimentRunner(FAST).run("mcf", "deact-n"))
        worker_dict = execute_job(
            SweepJob("mcf", "deact-n", default_config(), FAST))
        telemetry = worker_dict.pop("telemetry")
        assert telemetry["events"] == FAST.n_events
        assert telemetry["wall_s"] > 0
        assert runner_dict == worker_dict

    def test_multi_node_runs_are_deterministic(self):
        config = with_nodes(default_config(), 2)
        first = ExperimentRunner(FAST).run("dc", "deact-n", config)
        second = ExperimentRunner(FAST).run("dc", "deact-n", config)
        assert _result_to_dict(first) == _result_to_dict(second)

    def test_sweep_jobs1_vs_jobs4_identical(self):
        serial = _sweep_dicts(jobs=1)
        parallel = _sweep_dicts(jobs=4)
        assert serial == parallel

    def test_parallel_sweep_cache_replays_identically(self, tmp_path):
        cache = str(tmp_path / "cache.json")
        fresh = _sweep_dicts(jobs=4, cache_path=cache)
        recalled = _sweep_dicts(jobs=1, cache_path=cache)
        assert fresh == recalled

    def test_different_seeds_differ(self):
        # Guards against the suite passing vacuously (e.g. a runner
        # that ignores its settings would sail through the tests
        # above).
        base = ExperimentRunner(FAST).run("mcf", "i-fam")
        reseeded = ExperimentRunner(
            RunSettings(n_events=FAST.n_events,
                        footprint_scale=FAST.footprint_scale,
                        seed=FAST.seed + 1)).run("mcf", "i-fam")
        assert _result_to_dict(base) != _result_to_dict(reseeded)


# ----------------------------------------------------------------------
# Shard determinism: N shard runs reassemble the unsharded sweep
# ----------------------------------------------------------------------
class TestShardDeterminism:
    """The acceptance property of cross-host sharding: running every
    shard (on any host, in any order), merging, and validating yields
    a cache whose simulated outcome is bit-identical to the cache the
    unsharded sweep writes.  ``canonical_cache_text`` is the
    comparison — sorted keys, telemetry (per-execution wall-clock
    metadata) excluded, exactly as every other determinism test here
    excludes it."""

    def _spec(self) -> SweepSpec:
        return SweepSpec.build(benchmarks=FIG3_BENCHES,
                               architectures=FIG3_ARCHS)

    @pytest.mark.parametrize("count", [2, 3])
    def test_shard_union_bit_identical_to_unsharded(self, tmp_path, count):
        spec = self._spec()
        unsharded = str(tmp_path / "full.json")
        SweepEngine(FAST, cache_path=unsharded, jobs=1).run(spec)

        base = str(tmp_path / "merged.json")
        for index in range(1, count + 1):
            shard_path = shard_cache_path(base, index, count)
            SweepEngine(FAST, cache_path=shard_path, jobs=1).run(
                spec, shard=(index, count))
            assert load_cache_nonempty(shard_path)
            manifest = load_manifest(manifest_path(shard_path))
            assert manifest.fingerprint == spec_fingerprint(spec, FAST)

        merged, manifests, _paths = merge_shards(base, strict=True)
        assert len(manifests) == count
        report = validate_cache(base, spec, FAST)
        assert report.ok, report.render()
        assert canonical_cache_text(base) == canonical_cache_text(unsharded)

    def test_sharded_parallel_matches_unsharded_serial(self, tmp_path):
        # Worker-pool execution inside a shard must not change the
        # reassembled outcome either.
        spec = self._spec()
        unsharded = str(tmp_path / "full.json")
        SweepEngine(FAST, cache_path=unsharded, jobs=1).run(spec)
        base = str(tmp_path / "merged.json")
        for index in (1, 2):
            SweepEngine(FAST, cache_path=shard_cache_path(base, index, 2),
                        jobs=2).run(spec, shard=(index, 2))
        merge_shards(base, strict=True)
        assert canonical_cache_text(base) == canonical_cache_text(unsharded)

    def test_shard_results_match_unsharded_cells(self):
        # In-memory view: each shard returns exactly its partition's
        # cells, with the same serialized results the full run yields.
        spec = self._spec()
        full = {cell: _result_to_dict(result) for cell, result
                in SweepEngine(FAST, jobs=1).run(spec).items()}
        reassembled = {}
        for index in (1, 2):
            part = SweepEngine(FAST, jobs=1).run(spec, shard=(index, 2))
            assert not set(part) & set(reassembled)  # disjoint
            reassembled.update({cell: _result_to_dict(result)
                                for cell, result in part.items()})
        assert reassembled == full


def load_cache_nonempty(path: str) -> bool:
    from repro.experiments.cachefile import load_cache

    return bool(load_cache(path))


# ----------------------------------------------------------------------
# Serialization round trip
# ----------------------------------------------------------------------
def _random_result(rng: random.Random) -> RunResult:
    nodes = [
        NodeMetrics(
            node_id=node_id,
            instructions=rng.randrange(1, 10**9),
            memory_accesses=rng.randrange(10**6),
            cycles=rng.random() * 10**8,
            runtime_ns=rng.random() * 10**9,
            llc_misses=rng.randrange(10**5),
            fam_data_accesses=rng.randrange(10**5),
            tlb_hit_rate=rng.random(),
            node_walks=rng.randrange(10**4),
            translation_hit_rate=rng.random(),
            acm_hit_rate=rng.random(),
            counters={f"c{i}": rng.random() for i in range(rng.randrange(4))},
        )
        for node_id in range(rng.randrange(1, 5))
    ]
    return RunResult(
        architecture=rng.choice(["e-fam", "i-fam", "deact-w", "deact-n"]),
        benchmark=rng.choice(["mcf", "canl", "dc"]),
        nodes=nodes,
        fam_counters={f"f{i}": rng.random() for i in range(3)},
        fabric_counters={f"n{i}": float(rng.randrange(100))
                         for i in range(2)},
    )


class TestResultRoundTrip:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_results_survive_round_trip(self, seed):
        result = _random_result(random.Random(seed))
        rebuilt = _result_from_dict(_result_to_dict(result))
        assert _result_to_dict(rebuilt) == _result_to_dict(result)
        assert rebuilt == result  # dataclass equality, field by field

    @pytest.mark.parametrize("seed", range(5))
    def test_round_trip_through_json_text(self, seed):
        import json

        result = _random_result(random.Random(100 + seed))
        rebuilt = _result_from_dict(
            json.loads(json.dumps(_result_to_dict(result))))
        assert rebuilt == result

    def test_real_run_survives_round_trip(self):
        result = ExperimentRunner(FAST).run("mcf", "e-fam")
        assert _result_from_dict(_result_to_dict(result)) == result

    def test_missing_counter_blocks_default_empty(self):
        data = _result_to_dict(_random_result(random.Random(42)))
        data.pop("fam_counters")
        data.pop("fabric_counters")
        rebuilt = _result_from_dict(data)
        assert rebuilt.fam_counters == {}
        assert rebuilt.fabric_counters == {}


# ----------------------------------------------------------------------
# Event-loop ordering guarantees
# ----------------------------------------------------------------------
class TestEventLoopOrdering:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_schedules_fire_in_stable_time_order(self, seed):
        rng = random.Random(seed)
        loop = EventLoop()
        fired = []
        entries = []
        for index in range(200):
            when = float(rng.randrange(20))  # dense timestamps: many ties
            entries.append((when, index))
            loop.schedule(when, lambda t, i=index: fired.append(i))
        loop.run()
        expected = [i for _w, i in
                    sorted(entries, key=lambda e: (e[0], e[1]))]
        assert fired == expected

    def test_same_timestamp_fifo_across_interleaved_times(self):
        loop = EventLoop()
        fired = []
        for tag in ("a", "b"):
            loop.schedule(5.0, lambda t, tag=tag: fired.append(tag))
        loop.schedule(1.0, lambda t: fired.append("early"))
        for tag in ("c", "d"):
            loop.schedule(5.0, lambda t, tag=tag: fired.append(tag))
        loop.run()
        assert fired == ["early", "a", "b", "c", "d"]

    def test_past_scheduling_rejected(self):
        loop = EventLoop()
        loop.schedule(10.0, lambda t: None)
        loop.run()
        with pytest.raises(ConfigError, match="cannot schedule"):
            loop.schedule(9.999, lambda t: None)

    def test_past_scheduling_rejected_from_inside_callback(self):
        loop = EventLoop()

        def bad(t):
            loop.schedule(t - 1.0, lambda t2: None)

        loop.schedule(2.0, bad)
        with pytest.raises(ConfigError):
            loop.run()

    def test_scheduling_at_now_is_allowed(self):
        loop = EventLoop()
        fired = []
        loop.schedule(3.0, lambda t: loop.schedule(
            t, lambda t2: fired.append(t2)))
        loop.run()
        assert fired == [3.0]

    def test_run_until_includes_boundary_event(self):
        loop = EventLoop()
        fired = []
        loop.schedule(5.0, lambda t: fired.append(t))
        loop.schedule(5.0 + 1e-9, lambda t: fired.append(t))
        loop.run(until=5.0)
        assert fired == [5.0]  # exactly-at-boundary fires ...
        assert len(loop) == 1  # ... strictly-after stays queued

    def test_run_until_then_resume(self):
        loop = EventLoop()
        fired = []
        for when in (1.0, 2.0, 3.0):
            loop.schedule(when, lambda t: fired.append(t))
        loop.run(until=2.0)
        assert fired == [1.0, 2.0]
        loop.run()
        assert fired == [1.0, 2.0, 3.0]
