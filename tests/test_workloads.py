"""Tests for traces, synthetic generators, and the benchmark catalog."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceError
from repro.workloads.catalog import (
    BENCHMARKS,
    SUITE_GROUPS,
    benchmark_names,
    get_profile,
)
from repro.workloads.synthetic import PatternSpec, generate_trace
from repro.workloads.trace import Trace, TraceEvent


class TestTrace:
    def test_iteration_yields_events(self):
        trace = Trace("t", [1, 2], [4096, 8192], [False, True],
                      [True, False])
        events = list(trace)
        assert events[0] == TraceEvent(1, 4096, False, True)
        assert events[1] == TraceEvent(2, 8192, True, False)

    def test_ragged_columns_rejected(self):
        with pytest.raises(TraceError):
            Trace("t", [1], [], [], [])

    def test_instructions_counts_gaps(self):
        trace = Trace("t", [3, 4], [0, 0], [False, False], [False, False])
        assert trace.instructions == 9  # 2 events + 7 gap

    def test_footprint_pages(self):
        trace = Trace("t", [0, 0, 0], [0, 4096, 4097],
                      [False] * 3, [False] * 3)
        assert trace.footprint_pages() == 2

    def test_slice(self):
        trace = Trace("t", [1, 2, 3], [0, 64, 128],
                      [False] * 3, [False] * 3)
        part = trace.slice(1, 3)
        assert len(part) == 2
        assert part[0].vaddr == 64


class TestGenerateTrace:
    def test_deterministic(self):
        spec = [PatternSpec("zipf", 1.0, {"alpha": 0.8})]
        a = generate_trace("t", 500, 100, spec, 5.0, 0.3, 0.5, seed=9)
        b = generate_trace("t", 500, 100, spec, 5.0, 0.3, 0.5, seed=9)
        assert a.vaddrs == b.vaddrs
        assert a.gaps == b.gaps

    def test_seed_changes_trace(self):
        spec = [PatternSpec("zipf", 1.0, {"alpha": 0.8})]
        a = generate_trace("t", 500, 100, spec, 5.0, 0.3, 0.5, seed=9)
        b = generate_trace("t", 500, 100, spec, 5.0, 0.3, 0.5, seed=10)
        assert a.vaddrs != b.vaddrs

    def test_footprint_respected(self):
        spec = [PatternSpec("zipf", 1.0, {"alpha": 0.5})]
        trace = generate_trace("t", 2000, 50, spec, 0.0, 0.0, 0.0, seed=1)
        assert trace.footprint_pages() <= 50

    def test_sequential_walks_blocks(self):
        spec = [PatternSpec("sequential", 1.0)]
        trace = generate_trace("t", 100, 10, spec, 0.0, 0.0, 0.0, seed=1)
        deltas = {b - a for a, b in zip(trace.vaddrs, trace.vaddrs[1:])}
        # Consecutive blocks except at the wrap point.
        assert deltas <= {64, 64 - 10 * 4096}

    def test_strided_pattern_stride(self):
        spec = [PatternSpec("strided", 1.0, {"stride_bytes": 1024})]
        trace = generate_trace("t", 50, 100, spec, 0.0, 0.0, 0.0, seed=1)
        deltas = {b - a for a, b in zip(trace.vaddrs, trace.vaddrs[1:])}
        assert 1024 in deltas

    def test_chase_events_always_dependent(self):
        spec = [PatternSpec("chase", 1.0)]
        trace = generate_trace("t", 200, 100, spec, 0.0, 0.0, 0.0, seed=1)
        # Chase loads are dependent unless they are stores (none here).
        assert all(trace.dependents)

    def test_writes_never_dependent(self):
        spec = [PatternSpec("zipf", 1.0, {"alpha": 0.5})]
        trace = generate_trace("t", 500, 100, spec, 0.0, 0.9, 0.9, seed=1)
        for event in trace:
            if event.is_write:
                assert not event.dependent

    def test_write_fraction_approx(self):
        spec = [PatternSpec("zipf", 1.0, {"alpha": 0.5})]
        trace = generate_trace("t", 4000, 100, spec, 0.0, 0.3, 0.0, seed=1)
        share = sum(trace.writes) / len(trace)
        assert 0.2 < share < 0.4

    def test_gap_mean_approx(self):
        spec = [PatternSpec("zipf", 1.0, {"alpha": 0.5})]
        trace = generate_trace("t", 4000, 100, spec, 10.0, 0.0, 0.0, seed=1)
        mean = sum(trace.gaps) / len(trace)
        assert 8.0 < mean < 12.0

    def test_reuse_concentrates_pages(self):
        spec = [PatternSpec("zipf", 1.0, {"alpha": 0.2})]
        low = generate_trace("t", 3000, 3000, spec, 0.0, 0.0, 0.0,
                             seed=1, reuse_fraction=0.0)
        high = generate_trace("t", 3000, 3000, spec, 0.0, 0.0, 0.0,
                              seed=1, reuse_fraction=0.9, reuse_window=64)
        assert high.footprint_pages() < low.footprint_pages()

    def test_hotcold_concentrates(self):
        spec = [PatternSpec("hotcold", 1.0,
                            {"hot_fraction": 0.95, "hot_pages": 4})]
        trace = generate_trace("t", 2000, 1000, spec, 0.0, 0.0, 0.0, seed=1)
        from collections import Counter
        pages = Counter(v // 4096 for v in trace.vaddrs)
        top4 = sum(count for _page, count in pages.most_common(4))
        assert top4 / len(trace) > 0.8

    def test_validation_errors(self):
        spec = [PatternSpec("zipf", 1.0)]
        with pytest.raises(TraceError):
            generate_trace("t", 0, 10, spec, 0.0, 0.0, 0.0)
        with pytest.raises(TraceError):
            generate_trace("t", 10, 0, spec, 0.0, 0.0, 0.0)
        with pytest.raises(TraceError):
            generate_trace("t", 10, 10, [], 0.0, 0.0, 0.0)
        with pytest.raises(TraceError):
            PatternSpec("mystery", 1.0)
        with pytest.raises(TraceError):
            PatternSpec("zipf", 0.0)

    @given(st.integers(min_value=1, max_value=2000),
           st.integers(min_value=1, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_addresses_inside_heap_region(self, n_events, footprint):
        spec = [PatternSpec("zipf", 0.5, {"alpha": 0.7}),
                PatternSpec("sequential", 0.5)]
        trace = generate_trace("t", n_events, footprint, spec,
                               3.0, 0.2, 0.3, seed=5)
        base = 0x1000_0000
        limit = base + footprint * 4096
        assert all(base <= addr < limit for addr in trace.vaddrs)


class TestCatalog:
    def test_fifteen_benchmarks(self):
        # 14 paper benchmarks plus the repo's hotspot microkernel.
        assert len(benchmark_names()) == 15
        assert benchmark_names()[-1] == "hotspot"

    def test_figure_order(self):
        assert benchmark_names()[:5] == ["mcf", "cactus", "astar",
                                         "frqm", "canl"]

    def test_table_iii_mpki_values(self):
        """Spot-check published MPKI numbers from Table III."""
        assert get_profile("mcf").paper_mpki == 73
        assert get_profile("sssp").paper_mpki == 144
        assert get_profile("bc").paper_mpki == 113
        assert get_profile("dc").paper_mpki == 49
        assert get_profile("lu").paper_mpki is None  # not in Table III

    def test_suites(self):
        assert get_profile("mcf").suite == "SPEC 2006"
        assert get_profile("canl").suite == "PARSEC"
        assert get_profile("sssp").suite == "Intel GAP"
        assert get_profile("pf").suite == "Mantevo"
        assert get_profile("mg").suite == "NAS"

    def test_unknown_benchmark_raises(self):
        with pytest.raises(TraceError):
            get_profile("doom")

    def test_build_trace_deterministic(self):
        profile = get_profile("mcf")
        a = profile.build_trace(500, seed=3, footprint_scale=0.05)
        b = profile.build_trace(500, seed=3, footprint_scale=0.05)
        assert a.vaddrs == b.vaddrs

    def test_benchmarks_have_distinct_traces(self):
        a = get_profile("mcf").build_trace(200, seed=3, footprint_scale=0.05)
        b = get_profile("canl").build_trace(200, seed=3, footprint_scale=0.05)
        assert a.vaddrs != b.vaddrs

    def test_footprint_scale(self):
        profile = get_profile("mcf")
        full = profile.footprint_pages
        trace = profile.build_trace(5000, seed=1, footprint_scale=0.01)
        assert trace.footprint_pages() <= max(64, int(full * 0.01))

    def test_suite_groups_cover_sensitivity_benchmarks(self):
        members = [m for group in SUITE_GROUPS.values() for m in group]
        for bench in ("mcf", "canl", "sssp", "pf", "dc"):
            assert bench in members

    def test_paper_slowdowns_recorded_for_outliers(self):
        assert get_profile("sssp").paper_ifam_slowdown == 20.6
        assert get_profile("canl").paper_ifam_slowdown == 18.7
        assert get_profile("cactus").paper_ifam_slowdown == 11.6
        assert get_profile("ccsv").paper_ifam_slowdown == 9.1
