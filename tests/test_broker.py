"""Tests for the memory broker and node registry."""

import pytest

from repro.acm.metadata import PERM_RO, PERM_RW, Permission, shared_owner_marker
from repro.broker.broker import MemoryBroker
from repro.broker.registry import NodeRegistry
from repro.config.system import AllocationConfig, FamConfig, GIB, PAGE_BYTES
from repro.errors import ConfigError, TranslationFault


def make_broker(policy="random"):
    fam = FamConfig(capacity_bytes=1 * GIB)
    allocation = AllocationConfig(fam_policy=policy, seed=5)
    return MemoryBroker(fam, allocation)


class TestRegistration:
    def test_register_creates_system_table(self):
        broker = make_broker()
        broker.register_node(0)
        assert broker.system_table(0) is not None

    def test_unknown_node_rejected(self):
        broker = make_broker()
        with pytest.raises(ConfigError):
            broker.system_table(3)

    def test_duplicate_registration_rejected(self):
        broker = make_broker()
        broker.register_node(0)
        with pytest.raises(ConfigError):
            broker.register_node(0)


class TestPageGrants:
    def test_allocate_installs_mapping_and_acm(self):
        broker = make_broker()
        broker.register_node(0)
        fam_page = broker.allocate_for_node(0, node_page=0x100)
        assert broker.translate(0, 0x100) == fam_page
        entry = broker.acm.entry_of(fam_page)
        assert entry.owner == 0

    def test_double_grant_rejected(self):
        broker = make_broker()
        broker.register_node(0)
        broker.allocate_for_node(0, 0x100)
        with pytest.raises(ConfigError):
            broker.allocate_for_node(0, 0x100)

    def test_ensure_mapped_is_idempotent(self):
        broker = make_broker()
        broker.register_node(0)
        first = broker.ensure_mapped(0, 0x100)
        second = broker.ensure_mapped(0, 0x100)
        assert first == second

    def test_translate_unmapped_faults(self):
        broker = make_broker()
        broker.register_node(0)
        with pytest.raises(TranslationFault):
            broker.translate(0, 0x999)

    def test_release_scrubs_everything(self):
        broker = make_broker()
        broker.register_node(0)
        fam_page = broker.allocate_for_node(0, 0x100)
        broker.release_page(0, 0x100)
        with pytest.raises(TranslationFault):
            broker.translate(0, 0x100)
        assert broker.acm.entry_of(fam_page) is None
        assert not broker.fam_allocator.is_allocated(fam_page * PAGE_BYTES)

    def test_isolation_between_nodes(self):
        """Pages granted to node 0 fail verification from node 1 —
        the threat-model invariant."""
        broker = make_broker()
        broker.register_node(0)
        broker.register_node(1)
        fam_page = broker.allocate_for_node(0, 0x100)
        allowed, _ = broker.acm.check(1, fam_page * PAGE_BYTES,
                                      Permission.READ)
        assert not allowed

    def test_random_policy_scatters_frames(self):
        broker = make_broker("random")
        broker.register_node(0)
        pages = [broker.allocate_for_node(0, n) for n in range(32)]
        deltas = [abs(b - a) for a, b in zip(pages, pages[1:])]
        assert max(deltas) > 1  # not physically contiguous


class TestSharedSegments:
    def test_segment_grants_and_marks_shared(self):
        broker = make_broker()
        broker.register_node(0)
        broker.register_node(1)
        segment = broker.create_shared_segment({0: PERM_RW, 1: PERM_RO},
                                               n_pages=4)
        marker = shared_owner_marker(broker.layout.acm_bits)
        for fam_page in segment.fam_pages:
            assert broker.acm.entry_of(fam_page).owner == marker
        addr = segment.fam_pages[0] * PAGE_BYTES
        assert broker.acm.check(0, addr, Permission.WRITE)[0]
        assert broker.acm.check(1, addr, Permission.READ)[0]
        assert not broker.acm.check(1, addr, Permission.WRITE)[0]

    def test_segment_pages_contiguous(self):
        broker = make_broker()
        broker.register_node(0)
        segment = broker.create_shared_segment({0: PERM_RW}, n_pages=8)
        pages = list(segment.fam_pages)
        assert pages == list(range(pages[0], pages[0] + 8))

    def test_map_shared_into_node(self):
        broker = make_broker()
        broker.register_node(0)
        broker.register_node(1)
        segment = broker.create_shared_segment({0: PERM_RW, 1: PERM_RO}, 2)
        broker.map_shared_into_node(1, 0x8000, segment)
        assert broker.translate(1, 0x8000) == segment.fam_pages[0]

    def test_non_grantee_cannot_map(self):
        broker = make_broker()
        broker.register_node(0)
        broker.register_node(1)
        segment = broker.create_shared_segment({0: PERM_RW}, 2)
        with pytest.raises(ConfigError):
            broker.map_shared_into_node(1, 0x8000, segment)

    def test_empty_grants_rejected(self):
        broker = make_broker()
        with pytest.raises(ConfigError):
            broker.create_shared_segment({}, 1)

    def test_unregistered_grantee_rejected(self):
        broker = make_broker()
        with pytest.raises(ConfigError):
            broker.create_shared_segment({9: PERM_RW}, 1)


class TestMigration:
    def test_pages_move_to_target_node(self):
        broker = make_broker()
        broker.register_node(0)
        broker.register_node(1)
        fam_page = broker.allocate_for_node(0, 0x100)
        report = broker.migrate_node_pages(0, 1)
        assert report.pages_moved == 1
        assert broker.translate(1, 0x100) == fam_page
        with pytest.raises(TranslationFault):
            broker.translate(0, 0x100)
        assert broker.acm.entry_of(fam_page).owner == 1

    def test_invalidation_callback_fires(self):
        broker = make_broker()
        broker.register_node(0)
        broker.register_node(1)
        broker.allocate_for_node(0, 0x100)
        broker.allocate_for_node(0, 0x101)
        invalidated = []
        broker.migrate_node_pages(0, 1,
                                  on_invalidate=lambda np, fp:
                                  invalidated.append(np))
        assert sorted(invalidated) == [0x100, 0x101]

    def test_shared_pages_stay_put(self):
        broker = make_broker()
        broker.register_node(0)
        broker.register_node(1)
        segment = broker.create_shared_segment({0: PERM_RW, 1: PERM_RW}, 2)
        broker.map_shared_into_node(0, 0x100, segment)
        report = broker.migrate_node_pages(0, 1)
        assert report.pages_moved == 0

    def test_report_counts_metadata_work(self):
        broker = make_broker()
        broker.register_node(0)
        broker.register_node(1)
        for page in range(3):
            broker.allocate_for_node(0, page)
        report = broker.migrate_node_pages(0, 1, on_invalidate=lambda *a: None)
        assert report.acm_writes == 3
        assert report.table_updates == 6
        assert report.translation_cache_invalidations == 3


class TestNodeRegistry:
    def test_capacity_from_acm_bits(self):
        assert NodeRegistry(16).capacity == 16383

    def test_node_id_limit(self):
        registry = NodeRegistry(16)
        with pytest.raises(ConfigError):
            registry.register_node(16383)

    def test_job_scheduling_and_migration(self):
        registry = NodeRegistry()
        registry.register_node(0)
        registry.register_node(1)
        record = registry.schedule_job("job-a", 0)
        assert registry.physical_node_of(record.logical_id) == 0
        registry.migrate_job("job-a", 1)
        assert registry.physical_node_of(record.logical_id) == 1
        assert record.migrations == 1

    def test_logical_ids_unique(self):
        registry = NodeRegistry()
        registry.register_node(0)
        a = registry.schedule_job("a", 0)
        b = registry.schedule_job("b", 0)
        assert a.logical_id != b.logical_id

    def test_duplicate_job_rejected(self):
        registry = NodeRegistry()
        registry.register_node(0)
        registry.schedule_job("a", 0)
        with pytest.raises(ConfigError):
            registry.schedule_job("a", 0)

    def test_migrate_unknown_job_rejected(self):
        registry = NodeRegistry()
        registry.register_node(0)
        with pytest.raises(ConfigError):
            registry.migrate_job("ghost", 0)
