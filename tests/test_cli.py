"""Tests for the ``deact`` command-line interface."""

import pytest

from repro.cli import main


class TestRunCommand:
    def test_run_prints_metrics(self, capsys):
        code = main(["run", "--benchmark", "mcf", "--arch", "deact-n",
                     "--events", "1500", "--footprint-scale", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "deact-n" in out
        assert "ACM hit rate" in out

    def test_run_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["run", "--benchmark", "doom", "--arch", "e-fam"])

    def test_run_rejects_unknown_arch(self):
        with pytest.raises(SystemExit):
            main(["run", "--benchmark", "mcf", "--arch", "z-fam"])


class TestCompareCommand:
    def test_compare_lists_all_architectures(self, capsys):
        code = main(["compare", "--benchmark", "mg",
                     "--events", "1500", "--footprint-scale", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        for arch in ("e-fam", "i-fam", "deact-w", "deact-n"):
            assert arch in out
        assert "vs I-FAM" in out

    def test_compare_multi_node(self, capsys):
        code = main(["compare", "--benchmark", "mg", "--nodes", "2",
                     "--events", "800", "--footprint-scale", "0.01"])
        assert code == 0

    def test_compare_with_jobs(self, capsys):
        code = main(["compare", "--benchmark", "mg", "--jobs", "2",
                     "--events", "800", "--footprint-scale", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        for arch in ("e-fam", "i-fam", "deact-w", "deact-n"):
            assert arch in out

    def test_compare_rejects_zero_jobs(self):
        with pytest.raises(SystemExit):
            main(["compare", "--benchmark", "mg", "--jobs", "0"])

    def test_compare_output_identical_across_jobs(self, capsys):
        argv = ["compare", "--benchmark", "mg",
                "--events", "800", "--footprint-scale", "0.01"]
        assert main(argv + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial


class TestSweepCommand:
    def test_sweep_prints_every_cell(self, capsys):
        code = main(["sweep", "--benchmark", "mcf", "--arch", "e-fam",
                     "--arch", "i-fam", "--events", "1500",
                     "--footprint-scale", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 runs" in out
        assert "e-fam" in out and "i-fam" in out
        assert "default" in out

    def test_sweep_repeated_axis_accumulates_values(self, capsys):
        code = main(["sweep", "--benchmark", "mcf", "--arch", "e-fam",
                     "--axis", "stu-entries=256",
                     "--axis", "stu-entries=512",
                     "--events", "1500", "--footprint-scale", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "stu-entries=256" in out
        assert "stu-entries=512" in out

    def test_sweep_with_axis_and_jobs(self, capsys):
        code = main(["sweep", "--benchmark", "mcf", "--arch", "e-fam",
                     "--axis", "stu-entries=256,512", "--jobs", "2",
                     "--events", "1500", "--footprint-scale", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "stu-entries=256" in out
        assert "stu-entries=512" in out

    def test_sweep_writes_cache(self, capsys, tmp_path):
        cache = tmp_path / "cache.json"
        code = main(["sweep", "--benchmark", "mcf", "--arch", "e-fam",
                     "--events", "1500", "--footprint-scale", "0.01",
                     "--cache", str(cache)])
        assert code == 0
        assert cache.exists()

    def test_sweep_rejects_zero_jobs(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--benchmark", "mcf", "--jobs", "0"])
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_sweep_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--benchmark", "doom"])

    def test_sweep_rejects_unknown_architecture(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--benchmark", "mcf", "--arch", "z-fam"])

    def test_sweep_rejects_unknown_axis(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--benchmark", "mcf",
                  "--axis", "warp-factor=9"])
        assert "unknown sweep axis" in capsys.readouterr().err

    def test_sweep_rejects_malformed_axis(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--benchmark", "mcf", "--axis", "stu-entries"])
        assert "NAME=V1" in capsys.readouterr().err

    def test_sweep_jobs_defaults_to_env_var(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "3")
        code = main(["sweep", "--benchmark", "mcf", "--arch", "e-fam",
                     "--events", "800", "--footprint-scale", "0.01"])
        assert code == 0
        assert "jobs=3" in capsys.readouterr().out

    def test_sweep_jobs_flag_overrides_env_var(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "3")
        code = main(["sweep", "--benchmark", "mcf", "--arch", "e-fam",
                     "--jobs", "1",
                     "--events", "800", "--footprint-scale", "0.01"])
        assert code == 0
        assert "jobs=1" in capsys.readouterr().out

    def test_sweep_garbage_env_var_falls_back_to_serial(
            self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "a-lot")
        code = main(["sweep", "--benchmark", "mcf", "--arch", "e-fam",
                     "--events", "800", "--footprint-scale", "0.01"])
        assert code == 0
        assert "jobs=1" in capsys.readouterr().out


class TestShardedSweep:
    SPEC = ["--benchmark", "mcf", "--arch", "e-fam", "--arch", "i-fam",
            "--events", "800", "--footprint-scale", "0.01"]

    def test_shard_requires_cache(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--benchmark", "mcf", "--shard", "1/2"])
        assert "--shard requires --cache" in capsys.readouterr().err

    def test_shard_rejects_malformed_spec(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", "--benchmark", "mcf", "--shard", "oops",
                  "--cache", str(tmp_path / "r.json")])
        assert "--shard expects I/N" in capsys.readouterr().err

    def test_shard_rejects_out_of_range_index(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", "--benchmark", "mcf", "--shard", "3/2",
                  "--cache", str(tmp_path / "r.json")])
        assert "1..count" in capsys.readouterr().err

    def test_shard_writes_shard_cache_and_manifest(self, capsys, tmp_path):
        cache = tmp_path / "r.json"
        code = main(["sweep", *self.SPEC, "--cache", str(cache),
                     "--shard", "1/2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "shard 1/2: 1 of 2 cells" in out
        assert (tmp_path / "r.shard-1-of-2.json").exists()
        assert (tmp_path / "r.shard-1-of-2.manifest.json").exists()
        assert not cache.exists()  # canonical cache only via merge

    def test_shard_merge_validate_round_trip(self, capsys, tmp_path):
        cache = str(tmp_path / "r.json")
        assert main(["sweep", *self.SPEC, "--cache", cache,
                     "--shard", "1/2"]) == 0
        assert main(["sweep", *self.SPEC, "--cache", cache,
                     "--shard", "2/2"]) == 0
        assert main(["cache", "merge", "--cache", cache]) == 0
        out = capsys.readouterr().out
        assert "merged 2 shard cache(s)" in out
        assert main(["cache", "validate", "--cache", cache,
                     *self.SPEC]) == 0
        assert "verdict   : OK" in capsys.readouterr().out
        assert main(["cache", "status", "--cache", cache,
                     *self.SPEC]) == 0
        assert "2/2 cells (100.0%)" in capsys.readouterr().out

        # The reassembled cache equals what an unsharded sweep writes.
        from repro.experiments.shardfile import canonical_cache_text

        unsharded = str(tmp_path / "full.json")
        assert main(["sweep", *self.SPEC, "--cache", unsharded]) == 0
        assert canonical_cache_text(cache) == \
            canonical_cache_text(unsharded)


class TestCacheCommand:
    SPEC = ["--benchmark", "mcf", "--arch", "e-fam",
            "--events", "800", "--footprint-scale", "0.01"]

    def test_merge_without_shards_fails(self, capsys, tmp_path):
        code = main(["cache", "merge",
                     "--cache", str(tmp_path / "r.json")])
        assert code == 1
        assert "no shard caches" in capsys.readouterr().err

    def test_merge_unverifiable_shards_fail_without_force(
            self, capsys, tmp_path):
        import json

        # Hand-written shard caches with no manifests: strict mode
        # cannot verify they belong to any sweep and refuses; --force
        # merges anyway with first-seen payload winning.
        base = tmp_path / "r.json"
        (tmp_path / "r.shard-1-of-2.json").write_text(
            json.dumps({"k": {"v": 1}}))
        (tmp_path / "r.shard-2-of-2.json").write_text(
            json.dumps({"k": {"v": 2}}))
        assert main(["cache", "merge", "--cache", str(base)]) == 1
        assert "no manifest" in capsys.readouterr().err
        assert main(["cache", "merge", "--cache", str(base),
                     "--force"]) == 0
        assert json.loads(base.read_text()) == {"k": {"v": 1}}

    def test_validate_missing_cell_fails(self, capsys, tmp_path):
        import json

        cache = tmp_path / "r.json"
        cache.write_text(json.dumps({}))
        code = main(["cache", "validate", "--cache", str(cache),
                     *self.SPEC])
        assert code == 1
        out = capsys.readouterr().out
        assert "missing" in out
        assert "FAIL" in out

    def test_validate_strict_fails_on_orphans(self, capsys, tmp_path):
        import json

        from repro.config.presets import default_config
        from repro.experiments.runner import RunSettings, SweepJob, job_key

        settings = RunSettings(n_events=800, footprint_scale=0.01, seed=7)
        key = job_key(SweepJob("mcf", "e-fam", default_config(), settings))
        cache = tmp_path / "r.json"
        cache.write_text(json.dumps({key: {"v": 1},
                                     "orphan-key": {"v": 2}}))
        assert main(["cache", "validate", "--cache", str(cache),
                     *self.SPEC]) == 0
        assert "verdict   : OK" in capsys.readouterr().out
        assert main(["cache", "validate", "--cache", str(cache),
                     "--strict", *self.SPEC]) == 1
        out = capsys.readouterr().out
        assert "verdict   : FAIL" in out  # report agrees with exit code
        assert "fatal under --strict" in out

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["cache"])


class TestBenchCommand:
    ARGS = ["bench", "--events", "800", "--repeats", "1",
            "--benchmark", "hot-loop", "--arch", "deact-n"]

    def test_bench_appends_census_and_provenance(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        code = main(self.ARGS + ["--out", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "core-loop tiers" in out
        assert "batch/fast=" in out
        assert "appended entry" in out
        import json

        trajectory = json.loads(out_path.read_text())
        assert trajectory["schema"] == 2
        (entry,) = trajectory["entries"]
        tiers = {row["tier"] for row in entry["rows"]}
        assert tiers == {"reference", "fast", "batch"}
        assert all(row["identical_to_first_tier"]
                   for row in entry["rows"])
        assert "batch_speedup_vs_fast" in entry["aggregates"]["hot-loop"]
        assert entry["provenance"]["hostname"]
        assert entry["settings_fingerprint"]

    def test_bench_twice_appends_two_entries(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        assert main(self.ARGS + ["--out", str(out_path)]) == 0
        assert main(self.ARGS + ["--out", str(out_path)]) == 0
        import json

        trajectory = json.loads(out_path.read_text())
        assert len(trajectory["entries"]) == 2

    def test_bench_refuses_diverged_tiers(self, capsys, tmp_path,
                                          monkeypatch):
        # A diverged tier must not be silently serialized: exit
        # non-zero without touching the trajectory, unless the
        # operator explicitly records it with --no-verify.
        import json

        from repro.experiments import bench as bench_mod

        real = bench_mod.measure_core_loop

        def diverged(*args, **kwargs):
            payload = real(*args, **kwargs)
            payload["rows"][-1]["identical_to_first_tier"] = False
            return payload

        monkeypatch.setattr(bench_mod, "measure_core_loop", diverged)
        out_path = tmp_path / "bench.json"
        code = main(self.ARGS + ["--out", str(out_path)])
        assert code == 1
        assert "diverged" in capsys.readouterr().err
        assert not out_path.exists()

        code = main(self.ARGS + ["--out", str(out_path), "--no-verify"])
        assert code == 0
        assert "--no-verify" in capsys.readouterr().err
        assert len(json.loads(out_path.read_text())["entries"]) == 1

    def test_bench_accepts_catalog_benchmarks(self, capsys, tmp_path):
        code = main(["bench", "--events", "600", "--repeats", "1",
                     "--benchmark", "mg", "--arch", "e-fam",
                     "--out", str(tmp_path / "b.json")])
        assert code == 0
        assert "mg" in capsys.readouterr().out

    def test_bench_rejects_zero_repeats(self):
        with pytest.raises(SystemExit):
            main(["bench", "--repeats", "0"])

    def test_bench_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["bench", "--benchmark", "doom"])


class TestBenchCompareCommand:
    @staticmethod
    def _write_trajectory(path, scale=1.0, n_events=800):
        # tests/ is on sys.path under pytest's default import mode.
        from test_trajectory import make_payload

        from repro.experiments.trajectory import append_entry

        append_entry(str(path), make_payload(n_events=n_events,
                                             scale=scale))

    def test_compare_parity_exits_zero(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write_trajectory(a)
        self._write_trajectory(b)
        code = main(["bench", "compare", str(a), str(b)])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 of 3 cell(s) regressed" in out

    def test_compare_regression_exits_nonzero_with_table(self, capsys,
                                                         tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write_trajectory(a, scale=1.0)
        self._write_trajectory(b, scale=0.4)
        code = main(["bench", "compare", str(a), str(b)])
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "3 of 3 cell(s) regressed" in out

    def test_compare_tolerance_flag_relaxes_verdict(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write_trajectory(a, scale=1.0)
        self._write_trajectory(b, scale=0.4)
        assert main(["bench", "compare", str(a), str(b),
                     "--tolerance", "0.7"]) == 0

    def test_compare_refuses_mismatched_settings(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write_trajectory(a, n_events=800)
        self._write_trajectory(b, n_events=9000)
        code = main(["bench", "compare", str(a), str(b)])
        assert code == 2
        assert "refusing" in capsys.readouterr().err

    def test_compare_against_baseline(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        candidate = tmp_path / "candidate.json"
        self._write_trajectory(baseline, scale=1.0)
        self._write_trajectory(candidate, scale=1.0)
        assert main(["bench", "compare", "--against-baseline",
                     str(candidate), "--baseline", str(baseline)]) == 0
        # An injected slowdown flips the exit code.
        slow = tmp_path / "slow.json"
        self._write_trajectory(slow, scale=0.3)
        assert main(["bench", "compare", "--against-baseline",
                     str(slow), "--baseline", str(baseline)]) == 1

    def test_compare_baseline_env_override(self, capsys, tmp_path,
                                           monkeypatch):
        baseline = tmp_path / "baseline.json"
        candidate = tmp_path / "candidate.json"
        self._write_trajectory(baseline)
        self._write_trajectory(candidate)
        monkeypatch.setenv("REPRO_BENCH_JSON", str(baseline))
        assert main(["bench", "compare", "--against-baseline",
                     str(candidate)]) == 0

    def test_compare_missing_entries_fails_cleanly(self, capsys,
                                                   tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write_trajectory(a)
        code = main(["bench", "compare", str(a), str(b)])
        assert code == 2
        assert "no entries" in capsys.readouterr().err

    def test_compare_wrong_arity_rejected(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "compare", "only-one.json"])
        assert "BASELINE CANDIDATE" in capsys.readouterr().err

    def test_compare_rejects_bad_tolerance(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        self._write_trajectory(a)
        with pytest.raises(SystemExit):
            main(["bench", "compare", str(a), str(a),
                  "--tolerance", "batch=lots"])
        assert "FRACTION" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["bench", "compare", str(a), str(a),
                  "--tolerance", "1.5"])

    def test_tolerance_unpinned_requires_against_baseline(self, capsys,
                                                          tmp_path):
        a = tmp_path / "a.json"
        self._write_trajectory(a)
        with pytest.raises(SystemExit):
            main(["bench", "compare", str(a), str(a),
                  "--tolerance-unpinned", "0.75"])
        assert "--against-baseline" in capsys.readouterr().err

    def test_tolerance_unpinned_rejects_out_of_range(self, capsys,
                                                     tmp_path):
        a = tmp_path / "a.json"
        self._write_trajectory(a)
        with pytest.raises(SystemExit):
            main(["bench", "compare", "--against-baseline", str(a),
                  "--baseline", str(a), "--tolerance-unpinned", "1.5"])
        assert "[0, 1)" in capsys.readouterr().err

    def test_unpinned_baseline_applies_fallback_tolerance(self, capsys,
                                                          tmp_path):
        # One baseline entry: this runner is not pinned yet, so the
        # loose cross-host tolerance gates and a 60% slowdown passes.
        baseline = tmp_path / "baseline.json"
        slow = tmp_path / "slow.json"
        self._write_trajectory(baseline, scale=1.0)
        self._write_trajectory(slow, scale=0.4)
        assert main(["bench", "compare", "--against-baseline",
                     str(slow), "--baseline", str(baseline),
                     "--tolerance-unpinned", "0.75"]) == 0
        assert "not runner-pinned" in capsys.readouterr().out

    def test_pinned_baseline_gates_at_per_tier_defaults(self, capsys,
                                                        tmp_path):
        # Two same-host baseline entries pin the runner: the fallback
        # tolerance is dropped and the same 60% slowdown regresses
        # against the per-tier defaults.
        baseline = tmp_path / "baseline.json"
        slow = tmp_path / "slow.json"
        self._write_trajectory(baseline, scale=1.0)
        self._write_trajectory(baseline, scale=1.0)
        self._write_trajectory(slow, scale=0.4)
        assert main(["bench", "compare", "--against-baseline",
                     str(slow), "--baseline", str(baseline),
                     "--tolerance-unpinned", "0.75"]) == 1
        out = capsys.readouterr().out
        assert "runner-pinned (>=2 same-host entries)" in out
        assert "REGRESSED" in out

    @staticmethod
    def _write_with_aggregates(path, aggregates):
        from test_trajectory import make_payload

        from repro.experiments.trajectory import append_entry

        payload = make_payload(n_events=800)
        payload["aggregates"] = aggregates
        append_entry(str(path), payload)

    def test_compare_batch_floor_gate(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write_with_aggregates(
            a, {"hot-loop": {"batch_speedup_vs_fast": 3.5}})
        self._write_with_aggregates(
            b, {"hot-loop": {"batch_speedup_vs_fast": 3.5}})
        assert main(["bench", "compare", str(a), str(b),
                     "--require-batch-floor", "hot-loop=3.0"]) == 0
        assert "batch/fast 3.50x" in capsys.readouterr().out
        # Below the floor: regression-free cells no longer save it.
        c = tmp_path / "c.json"
        self._write_with_aggregates(
            c, {"hot-loop": {"batch_speedup_vs_fast": 0.9}})
        code = main(["bench", "compare", str(a), str(c),
                     "--require-batch-floor", "hot-loop"])
        assert code == 1
        assert "BELOW FLOOR" in capsys.readouterr().out

    def test_compare_rejects_bad_batch_floor(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        self._write_trajectory(a)
        with pytest.raises(SystemExit):
            main(["bench", "compare", str(a), str(a),
                  "--require-batch-floor", "hot-loop=soon"])
        assert "BENCH[=MIN]" in capsys.readouterr().err


    def test_cli_literals_match_real_constants(self):
        # The parser spells these as literals to keep the heavy bench
        # stack un-imported for other subcommands; pin them here.
        from repro.core.system import EXECUTION_MODES
        from repro.experiments.bench import HOT_BENCH

        assert EXECUTION_MODES == ("batch", "fast", "reference")
        assert HOT_BENCH == "hot-loop"


class TestProfileCommand:
    def test_profile_prints_hot_functions(self, capsys):
        code = main(["profile", "--benchmark", "hot-loop",
                     "--arch", "deact-n", "--events", "1500",
                     "--mode", "batch", "--limit", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "profile: hot-loop on deact-n" in out
        assert "cumulative" in out
        assert "function calls" in out

    @pytest.mark.parametrize("mode", ("fast", "reference"))
    def test_profile_other_tiers(self, capsys, mode):
        code = main(["profile", "--benchmark", "mg", "--arch", "e-fam",
                     "--events", "800", "--footprint-scale", "0.01",
                     "--mode", mode, "--limit", "5"])
        assert code == 0
        assert "function calls" in capsys.readouterr().out

    def test_profile_requires_benchmark(self):
        with pytest.raises(SystemExit):
            main(["profile", "--arch", "e-fam"])

    def test_profile_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            main(["profile", "--benchmark", "mg", "--mode", "warp"])


class TestFiguresCommand:
    def test_figures_forwards_to_harness(self, capsys):
        code = main(["figures", "--figure", "t1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "FAM Architectures Comparison" in out

    def test_figures_forwards_jobs_flag(self, capsys):
        code = main(["figures", "--figure", "3", "--jobs", "2",
                     "--events", "1500", "--footprint-scale", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Slowdown of I-FAM" in out

    def test_figures_rejects_zero_jobs(self, capsys):
        with pytest.raises(SystemExit):
            main(["figures", "--figure", "t1", "--jobs", "0"])
        assert "--jobs must be >= 1" in capsys.readouterr().err


class TestArgumentValidation:
    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
