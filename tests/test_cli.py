"""Tests for the ``deact`` command-line interface."""

import pytest

from repro.cli import main


class TestRunCommand:
    def test_run_prints_metrics(self, capsys):
        code = main(["run", "--benchmark", "mcf", "--arch", "deact-n",
                     "--events", "1500", "--footprint-scale", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "deact-n" in out
        assert "ACM hit rate" in out

    def test_run_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["run", "--benchmark", "doom", "--arch", "e-fam"])

    def test_run_rejects_unknown_arch(self):
        with pytest.raises(SystemExit):
            main(["run", "--benchmark", "mcf", "--arch", "z-fam"])


class TestCompareCommand:
    def test_compare_lists_all_architectures(self, capsys):
        code = main(["compare", "--benchmark", "mg",
                     "--events", "1500", "--footprint-scale", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        for arch in ("e-fam", "i-fam", "deact-w", "deact-n"):
            assert arch in out
        assert "vs I-FAM" in out

    def test_compare_multi_node(self, capsys):
        code = main(["compare", "--benchmark", "mg", "--nodes", "2",
                     "--events", "800", "--footprint-scale", "0.01"])
        assert code == 0


class TestFiguresCommand:
    def test_figures_forwards_to_harness(self, capsys):
        code = main(["figures", "--figure", "t1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "FAM Architectures Comparison" in out


class TestArgumentValidation:
    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
