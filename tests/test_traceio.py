"""Tests for trace persistence."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceError
from repro.workloads.catalog import get_profile
from repro.workloads.trace import Trace
from repro.workloads.traceio import load_trace, save_trace


def sample_trace():
    return Trace("sample", [0, 3, 7], [0x1000, 0x2040, 0x1000],
                 [False, True, False], [True, False, False])


class TestRoundTrip:
    def test_plain_roundtrip(self, tmp_path):
        path = str(tmp_path / "t.trace")
        original = sample_trace()
        save_trace(original, path)
        loaded = load_trace(path)
        assert loaded.gaps == original.gaps
        assert loaded.vaddrs == original.vaddrs
        assert loaded.writes == original.writes
        assert loaded.dependents == original.dependents
        assert loaded.name == "sample"

    def test_gzip_roundtrip(self, tmp_path):
        path = str(tmp_path / "t.trace.gz")
        original = sample_trace()
        save_trace(original, path)
        loaded = load_trace(path)
        assert loaded.vaddrs == original.vaddrs

    def test_generated_trace_roundtrip(self, tmp_path):
        path = str(tmp_path / "mcf.trace")
        original = get_profile("mcf").build_trace(300, seed=4,
                                                  footprint_scale=0.02)
        save_trace(original, path)
        loaded = load_trace(path)
        assert loaded.vaddrs == original.vaddrs
        assert loaded.instructions == original.instructions

    @given(st.lists(st.tuples(st.integers(0, 1000),
                              st.integers(0, 2**48 - 1),
                              st.booleans(), st.booleans()),
                    min_size=1, max_size=50))
    @settings(max_examples=25)
    def test_roundtrip_property(self, events):
        import tempfile

        trace = Trace("prop",
                      [e[0] for e in events],
                      [e[1] for e in events],
                      [e[2] for e in events],
                      # Stores are never dependent in the simulator's
                      # convention, but IO must preserve whatever it gets.
                      [e[3] for e in events])
        with tempfile.TemporaryDirectory() as tmp:
            path = f"{tmp}/p.trace"
            save_trace(trace, path)
            loaded = load_trace(path)
        assert loaded.gaps == trace.gaps
        assert loaded.vaddrs == trace.vaddrs
        assert loaded.writes == trace.writes
        assert loaded.dependents == trace.dependents


class TestErrors:
    def test_missing_file(self):
        with pytest.raises(TraceError):
            load_trace("/nonexistent/path.trace")

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not a trace\n1 2 3\n")
        with pytest.raises(TraceError):
            load_trace(str(path))

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("#deact-trace-v1 name=x events=1\n1 2\n")
        with pytest.raises(TraceError) as exc:
            load_trace(str(path))
        assert ":2:" in str(exc.value)

    def test_out_of_range_flags(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("#deact-trace-v1 name=x events=1\n1 ff 9\n")
        with pytest.raises(TraceError):
            load_trace(str(path))

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text("#deact-trace-v1 name=x events=0\n")
        with pytest.raises(TraceError):
            load_trace(str(path))

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "ok.trace"
        path.write_text("#deact-trace-v1 name=x events=1\n"
                        "# comment\n\n3 1000 1\n")
        trace = load_trace(str(path))
        assert len(trace) == 1
        assert trace.vaddrs == [0x1000]
        assert trace.writes == [True]
