"""Tests for access-control metadata: entries, layout, bitmaps, store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.acm.bitmap import SharedPageBitmap
from repro.acm.layout import FamLayout
from repro.acm.metadata import (
    AcmEntry,
    PERM_RO,
    PERM_RW,
    PERM_RWX,
    PERM_RX,
    Permission,
    max_nodes,
    perm_code_allows,
    shared_owner_marker,
)
from repro.acm.store import AcmStore
from repro.config.system import GIB
from repro.errors import AccessViolationError, ConfigError


class TestPermissionCodes:
    def test_ro_denies_write(self):
        assert perm_code_allows(PERM_RO, Permission.READ)
        assert not perm_code_allows(PERM_RO, Permission.WRITE)

    def test_rw_grants_read_write(self):
        assert perm_code_allows(PERM_RW, Permission.READ | Permission.WRITE)
        assert not perm_code_allows(PERM_RW, Permission.EXEC)

    def test_rx_grants_exec(self):
        assert perm_code_allows(PERM_RX, Permission.EXEC)
        assert not perm_code_allows(PERM_RX, Permission.WRITE)

    def test_rwx_grants_everything(self):
        needed = Permission.READ | Permission.WRITE | Permission.EXEC
        assert perm_code_allows(PERM_RWX, needed)


class TestAcmEntry:
    def test_encode_decode_roundtrip_16(self):
        entry = AcmEntry(owner=1234, perm_code=PERM_RW)
        assert AcmEntry.decode(entry.encode(16), 16) == entry

    @given(st.integers(min_value=0, max_value=(1 << 14) - 1),
           st.integers(min_value=0, max_value=3))
    def test_roundtrip_property_16(self, owner, perm):
        entry = AcmEntry(owner=owner, perm_code=perm)
        assert AcmEntry.decode(entry.encode(16), 16) == entry

    @given(st.integers(min_value=0, max_value=(1 << 6) - 1),
           st.integers(min_value=0, max_value=3))
    def test_roundtrip_property_8(self, owner, perm):
        entry = AcmEntry(owner=owner, perm_code=perm)
        assert AcmEntry.decode(entry.encode(8), 8) == entry

    def test_paper_shared_marker_is_16383_nodes(self):
        """16-bit ACM: 14 owner bits; marker 0x3FFF; 16383 real ids."""
        assert shared_owner_marker(16) == 0x3FFF
        assert max_nodes(16) == 16383

    def test_owner_overflow_rejected(self):
        with pytest.raises(ConfigError):
            AcmEntry(owner=1 << 14, perm_code=0).encode(16)

    def test_is_shared(self):
        shared = AcmEntry(owner=shared_owner_marker(16))
        assert shared.is_shared(16)
        assert not AcmEntry(owner=5).is_shared(16)

    def test_allows_owner_only(self):
        entry = AcmEntry(owner=7, perm_code=PERM_RW)
        assert entry.allows(7, Permission.WRITE, 16)
        assert not entry.allows(8, Permission.READ, 16)

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigError):
            shared_owner_marker(12)


class TestFamLayout:
    def test_paper_geometry_16gb(self):
        layout = FamLayout(16 * GIB, acm_bits=16)
        # 64B block covers 32 pages of 16-bit entries (Figure 5).
        assert layout.pages_per_block == 32
        # Metadata: 2 bytes per 4KB page = capacity / 2048.
        assert layout.metadata_bytes == 16 * GIB // 2048
        # Bitmaps: 8KB per 1GB region.
        assert layout.bitmap_bytes == 16 * 8 * 1024
        assert layout.metadata_base + layout.metadata_bytes + \
            layout.bitmap_bytes == 16 * GIB

    def test_overhead_is_small(self):
        layout = FamLayout(16 * GIB, acm_bits=16)
        assert layout.overhead_fraction < 0.001

    def test_acm_block_addr_derivation(self):
        """MTAdd + page/32 * 64 for 16-bit entries (Section III-A)."""
        layout = FamLayout(16 * GIB, acm_bits=16)
        addr = 4096 * 33  # page 33 -> block 1
        expected = layout.metadata_base + (33 // 32) * 64
        assert layout.acm_block_addr(addr) == expected

    def test_pages_per_block_by_width(self):
        assert FamLayout(16 * GIB, acm_bits=8).pages_per_block == 64
        assert FamLayout(16 * GIB, acm_bits=32).pages_per_block == 16

    def test_block_key_groups_32_pages(self):
        layout = FamLayout(16 * GIB, acm_bits=16)
        assert layout.acm_block_key(0) == layout.acm_block_key(31 * 4096)
        assert layout.acm_block_key(0) != layout.acm_block_key(32 * 4096)

    def test_rejects_metadata_addresses(self):
        layout = FamLayout(16 * GIB)
        with pytest.raises(ConfigError):
            layout.page_number(layout.metadata_base)

    def test_is_metadata_address(self):
        layout = FamLayout(16 * GIB)
        assert layout.is_metadata_address(layout.metadata_base)
        assert not layout.is_metadata_address(0)

    def test_bitmap_block_addr_within_region_bitmap(self):
        layout = FamLayout(16 * GIB)
        addr = layout.bitmap_block_addr(5 * GIB, node_id=100)
        region_base = layout.bitmap_base + 5 * 8 * 1024
        assert region_base <= addr < region_base + 8 * 1024

    @given(st.integers(min_value=0, max_value=(16 * GIB // 4096) - 10**6),
           st.integers(min_value=0, max_value=16382))
    @settings(max_examples=50)
    def test_derivation_total(self, page, node):
        """ACM addresses always land inside the metadata region and
        bitmap addresses inside the bitmap region."""
        layout = FamLayout(16 * GIB)
        fam_addr = page * 4096
        if fam_addr >= layout.metadata_base:
            return
        assert layout.metadata_base <= layout.acm_block_addr(fam_addr) \
            < layout.bitmap_base
        assert layout.bitmap_base <= \
            layout.bitmap_block_addr(fam_addr, node) < layout.capacity_bytes


class TestSharedPageBitmap:
    def test_grant_and_check(self):
        bitmap = SharedPageBitmap(region=0)
        bitmap.grant(5, PERM_RW)
        assert bitmap.allows(5, Permission.WRITE)
        assert not bitmap.allows(6, Permission.READ)

    def test_mixed_permissions(self):
        """The paper's mixed sharing: some nodes RW, others RO."""
        bitmap = SharedPageBitmap(region=0)
        bitmap.grant(1, PERM_RW)
        bitmap.grant(2, PERM_RO)
        assert bitmap.allows(1, Permission.WRITE)
        assert bitmap.allows(2, Permission.READ)
        assert not bitmap.allows(2, Permission.WRITE)

    def test_revoke(self):
        bitmap = SharedPageBitmap(region=0)
        bitmap.grant(1, PERM_RW)
        assert bitmap.revoke(1) is True
        assert bitmap.revoke(1) is False
        assert not bitmap.allows(1, Permission.READ)

    def test_nodes(self):
        bitmap = SharedPageBitmap(region=0)
        bitmap.grant(1, 0)
        bitmap.grant(9, 1)
        assert bitmap.nodes() == frozenset({1, 9})

    def test_rejects_marker_node_id(self):
        bitmap = SharedPageBitmap(region=0)
        with pytest.raises(ConfigError):
            bitmap.grant((1 << 14) - 1, 0)


class TestAcmStore:
    def make_store(self):
        return AcmStore(FamLayout(2 * GIB))

    def test_owner_check(self):
        store = self.make_store()
        store.set_owner(10, node_id=3, perm_code=PERM_RW)
        allowed, bitmap = store.check(3, 10 * 4096, Permission.WRITE)
        assert allowed and not bitmap

    def test_foreign_node_denied(self):
        store = self.make_store()
        store.set_owner(10, node_id=3, perm_code=PERM_RW)
        allowed, _bitmap = store.check(4, 10 * 4096, Permission.READ)
        assert not allowed

    def test_unallocated_page_denied(self):
        store = self.make_store()
        allowed, _bitmap = store.check(3, 10 * 4096, Permission.READ)
        assert not allowed

    def test_verify_raises(self):
        store = self.make_store()
        store.set_owner(10, node_id=3, perm_code=PERM_RO)
        with pytest.raises(AccessViolationError) as exc:
            store.verify(3, 10 * 4096, Permission.WRITE)
        assert exc.value.node_id == 3

    def test_shared_page_uses_bitmap(self):
        store = self.make_store()
        store.mark_shared(10)
        store.bitmap_for_region(0).grant(7, PERM_RW)
        allowed, consulted = store.check(7, 10 * 4096, Permission.WRITE)
        assert allowed and consulted
        allowed, consulted = store.check(8, 10 * 4096, Permission.READ)
        assert not allowed and consulted

    def test_clear(self):
        store = self.make_store()
        store.set_owner(10, node_id=3, perm_code=PERM_RW)
        store.clear(10)
        allowed, _ = store.check(3, 10 * 4096, Permission.READ)
        assert not allowed

    def test_read_block_covers_pages_per_block(self):
        store = self.make_store()
        for page in range(64):
            store.set_owner(page, node_id=1, perm_code=PERM_RW)
        block = store.read_block(0)
        assert len(block) == store.layout.pages_per_block

    def test_allocated_pages_counter(self):
        store = self.make_store()
        store.set_owner(1, 1, PERM_RW)
        store.set_owner(2, 1, PERM_RW)
        assert store.allocated_pages == 2
