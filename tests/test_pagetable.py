"""Tests for the four-level page table and walker."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TranslationFault
from repro.pagetable.walker import PageTableWalker
from repro.pagetable.x86 import FourLevelPageTable, LEVEL_NAMES


def make_table():
    counter = itertools.count()
    return FourLevelPageTable(lambda: next(counter) * 4096, name="t")


class TestMapping:
    def test_map_then_lookup(self):
        table = make_table()
        table.map(0x123, 77)
        entry = table.lookup(0x123)
        assert entry is not None
        assert entry.frame == 77

    def test_unmapped_lookup_is_none(self):
        assert make_table().lookup(0x999) is None

    def test_contains(self):
        table = make_table()
        table.map(5, 1)
        assert 5 in table
        assert 6 not in table

    def test_remap_replaces(self):
        table = make_table()
        table.map(5, 1)
        table.map(5, 2)
        assert table.lookup(5).frame == 2
        assert table.mapped_pages == 1

    def test_unmap(self):
        table = make_table()
        table.map(5, 1)
        assert table.unmap(5) is True
        assert table.unmap(5) is False
        assert table.lookup(5) is None

    def test_translate_raises_on_unmapped(self):
        with pytest.raises(TranslationFault):
            make_table().translate(42)

    def test_table_pages_allocated_lazily(self):
        table = make_table()
        assert table.table_pages == 1  # root only
        table.map(0, 1)
        assert table.table_pages == 4  # root + PUD + PMD + PTE
        table.map(1, 2)  # same subtree: no new tables
        assert table.table_pages == 4
        table.map(1 << 27, 3)  # different PGD slot: 3 new tables
        assert table.table_pages == 7

    def test_iter_mappings(self):
        table = make_table()
        table.map(7, 70)
        table.map(1 << 20, 71)
        found = dict(table.iter_mappings())
        assert found[7].frame == 70
        assert found[1 << 20].frame == 71


class TestSplitVpn:
    def test_known_split(self):
        # vpn with 9-bit groups: [1, 2, 3, 4]
        vpn = (1 << 27) | (2 << 18) | (3 << 9) | 4
        assert FourLevelPageTable.split_vpn(vpn) == [1, 2, 3, 4]

    @given(st.integers(min_value=0, max_value=(1 << 36) - 1))
    def test_split_reassembles(self, vpn):
        parts = FourLevelPageTable.split_vpn(vpn)
        rebuilt = 0
        for part in parts:
            rebuilt = (rebuilt << 9) | part
        assert rebuilt == vpn


class TestWalk:
    def test_walk_has_four_steps(self):
        table = make_table()
        table.map(0xABC, 9)
        steps = table.walk(0xABC)
        assert [s.level for s in steps] == [0, 1, 2, 3]
        assert [s.level_name for s in steps] == list(LEVEL_NAMES)

    def test_walk_addresses_fall_in_table_pages(self):
        table = make_table()
        table.map(0xABC, 9)
        for step in table.walk(0xABC):
            assert step.table_base <= step.entry_addr < step.table_base + 4096

    def test_walk_unmapped_faults(self):
        with pytest.raises(TranslationFault):
            make_table().walk(1)

    def test_walk_entries_matches_walk(self):
        table = make_table()
        table.map(0x55, 3)
        steps, entry = table.walk_entries(0x55)
        assert steps == table.walk(0x55)
        assert entry.frame == 3

    def test_shared_prefix_shares_table_pages(self):
        table = make_table()
        table.map(0, 1)
        table.map(1, 2)
        a = table.walk(0)
        b = table.walk(1)
        # Same interior tables, different PTE slot.
        assert a[2].table_base == b[2].table_base
        assert a[3].entry_addr != b[3].entry_addr


class TestWalker:
    def test_cold_walk_costs_four_accesses(self):
        table = make_table()
        table.map(0x777, 5)
        walker = PageTableWalker(table, cache_entries=32)
        result = walker.walk(0x777)
        assert result.memory_accesses == 4
        assert result.frame == 5

    def test_warm_walk_skips_interior_levels(self):
        table = make_table()
        table.map(0x700, 5)
        table.map(0x701, 6)
        walker = PageTableWalker(table, cache_entries=32)
        walker.walk(0x700)
        result = walker.walk(0x701)  # same PMD: only the PTE access
        assert result.memory_accesses == 1
        assert result.skipped_levels == 3

    def test_no_cache_walker_always_walks_four(self):
        table = make_table()
        table.map(0x700, 5)
        walker = PageTableWalker(table, cache_entries=0)
        walker.walk(0x700)
        result = walker.walk(0x700)
        assert result.memory_accesses == 4

    def test_invalidate_flushes(self):
        table = make_table()
        table.map(0x700, 5)
        walker = PageTableWalker(table, cache_entries=32)
        walker.walk(0x700)
        walker.invalidate()
        assert walker.walk(0x700).memory_accesses == 4

    def test_average_accesses(self):
        table = make_table()
        table.map(0x700, 5)
        walker = PageTableWalker(table, cache_entries=32)
        walker.walk(0x700)
        walker.walk(0x700)
        assert 1.0 <= walker.average_accesses_per_walk <= 4.0

    def test_walks_set_accessed_bit(self):
        table = make_table()
        entry = table.map(0x700, 5)
        assert entry.accessed is False
        PageTableWalker(table, cache_entries=0).walk(0x700)
        assert entry.accessed is True

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 30) - 1),
                    min_size=1, max_size=40, unique=True))
    @settings(max_examples=30)
    def test_walker_frame_matches_table(self, vpns):
        """Invariant: walk caches never change the translation result."""
        table = make_table()
        for index, vpn in enumerate(vpns):
            table.map(vpn, index + 100)
        walker = PageTableWalker(table, cache_entries=8)
        for _ in range(2):
            for index, vpn in enumerate(vpns):
                assert walker.walk(vpn).frame == index + 100
