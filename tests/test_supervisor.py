"""Supervised execution: retries, timeouts, quarantine, chaos
determinism, interrupt salvage, and checkpoint resume.

The paper-grade invariant under test throughout: a sweep that limps
through injected crashes, hangs, and corrupt payloads produces a
results cache **byte-identical** (``canonical_cache_text``) to a
clean run — recovery is scheduling noise, never result noise.
"""

import json
import os
import signal
import time

import pytest

from repro.errors import ConfigError, SweepFailure, SweepInterrupted
from repro.experiments import faults
from repro.experiments.faults import FaultPlan, FaultRule, load_fault_plan
from repro.experiments.runner import RunSettings, payload_ok
from repro.experiments.supervisor import (
    SupervisorConfig,
    _shield_signals,
    _sigterm_as_interrupt,
    retry_delay_s,
    run_supervised,
)
from repro.experiments.sweep import SweepEngine, SweepSpec, run_jobs
from repro.experiments.shardfile import canonical_cache_text

FAST = RunSettings(n_events=1500, footprint_scale=0.01, seed=3)

#: Two cells — enough for input-order checks without burning CI time.
SMALL = SweepSpec.build(benchmarks=["mcf"],
                       architectures=["i-fam", "deact-n"])
#: Four cells for the determinism/recovery matrix.
WIDE = SweepSpec.build(benchmarks=["mcf", "canl"],
                      architectures=["i-fam", "deact-n"])


def small_jobs():
    return [job for _cell, job in SMALL.jobs(FAST)]


@pytest.fixture(autouse=True)
def no_leaked_plan():
    """No test may leave a fault plan (or write hook) active."""
    yield
    faults.deactivate()


def plan(*rules, seed=7, state_dir=None):
    return FaultPlan(rules=tuple(rules), seed=seed, state_dir=state_dir)


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------
class TestFaultPlans:
    def test_inline_and_file_round_trip(self, tmp_path):
        data = {"schema": 1, "seed": 11, "faults": [
            {"kind": "crash", "match": "mcf", "attempts": 2}]}
        inline = load_fault_plan(json.dumps(data))
        assert inline.seed == 11
        assert inline.rules[0].kind == "crash"
        assert inline.rules[0].attempts == 2
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(data))
        from_file = load_fault_plan(str(path))
        assert from_file.rules == inline.rules
        # File plans get a default state dir next to the plan.
        assert from_file.state_dir == f"{path}.state"

    def test_bad_plans_are_config_errors(self, tmp_path):
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_fault_plan("{nope")
        with pytest.raises(ConfigError, match="cannot read fault plan"):
            load_fault_plan(str(tmp_path / "missing.json"))
        with pytest.raises(ConfigError, match="unknown fault kind"):
            load_fault_plan('{"faults": [{"kind": "meteor"}]}')
        with pytest.raises(ConfigError, match="pick must be in"):
            load_fault_plan('{"faults": [{"kind": "raise", "pick": 0}]}')
        # Inline torn-write plans must name a state dir explicitly.
        with pytest.raises(ConfigError, match="state_dir"):
            load_fault_plan('{"faults": [{"kind": "torn-write"}]}')

    def test_env_plan(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN",
            '{"seed": 2, "faults": [{"kind": "raise", "match": "x"}]}')
        env_plan = faults.plan_from_env()
        assert env_plan is not None and env_plan.seed == 2
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        assert faults.plan_from_env() is None

    def test_pick_is_deterministic_and_thins(self):
        rule = FaultRule(kind="raise", pick=0.5)
        keys = [f"job-{i}" for i in range(200)]
        hit = [k for k in keys
               if faults.execution_fault(plan(rule), k, 0) is not None]
        # Same plan, same keys -> same picks, and roughly half hit.
        again = [k for k in keys
                 if faults.execution_fault(plan(rule), k, 0) is not None]
        assert hit == again
        assert 40 < len(hit) < 160

    def test_attempts_gate_when_faults_fire(self):
        rule = FaultRule(kind="raise", attempts=2)
        p = plan(rule)
        assert faults.execution_fault(p, "k", 0) is rule
        assert faults.execution_fault(p, "k", 1) is rule
        assert faults.execution_fault(p, "k", 2) is None


# ----------------------------------------------------------------------
# Config and backoff
# ----------------------------------------------------------------------
class TestConfig:
    def test_seeded_backoff_is_pure_and_bounded(self):
        config = SupervisorConfig(backoff_base_s=0.05, backoff_cap_s=2.0)
        delays = [retry_delay_s(config, "key", a) for a in range(10)]
        assert delays == [retry_delay_s(config, "key", a)
                          for a in range(10)]
        assert all(0 < d <= 2.0 * 1.5 for d in delays)
        # Different keys jitter differently (that is the point).
        assert retry_delay_s(config, "key-a", 0) \
            != retry_delay_s(config, "key-b", 0)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="retries"):
            SupervisorConfig(retries=-1).validate()
        with pytest.raises(ValueError, match="job_timeout_s"):
            SupervisorConfig(job_timeout_s=0).validate()

    def test_payload_ok_boundary(self):
        assert not payload_ok(None)
        assert not payload_ok("text")
        assert not payload_ok({"__fault__": "injected"})
        assert not payload_ok(faults.corrupt_payload())


# ----------------------------------------------------------------------
# Recovery paths (each failure kind, through the real pool)
# ----------------------------------------------------------------------
class TestRecovery:
    def test_raise_is_retried_to_success(self):
        run = run_supervised(
            small_jobs(), n_workers=2,
            config=SupervisorConfig(retries=2),
            fault_plan=plan(FaultRule(kind="raise", attempts=2)))
        assert not run.report
        assert all(payload_ok(p) for p in run.payloads)

    def test_worker_crash_respawns_and_recovers(self):
        run = run_supervised(
            small_jobs(), n_workers=2,
            config=SupervisorConfig(retries=2),
            fault_plan=plan(FaultRule(kind="crash", attempts=1)))
        assert not run.report
        assert all(payload_ok(p) for p in run.payloads)

    def test_corrupt_payload_is_rejected_and_retried(self):
        run = run_supervised(
            small_jobs(), n_workers=2,
            config=SupervisorConfig(retries=1),
            fault_plan=plan(FaultRule(kind="corrupt", attempts=1)))
        assert not run.report
        assert all(payload_ok(p) for p in run.payloads)

    def test_hang_is_reaped_by_timeout(self):
        run = run_supervised(
            small_jobs(), n_workers=2,
            config=SupervisorConfig(job_timeout_s=2.0, retries=1),
            fault_plan=plan(FaultRule(kind="hang", attempts=1,
                                      hang_s=300.0)))
        assert not run.report
        assert all(payload_ok(p) for p in run.payloads)

    def test_quarantine_after_retry_budget(self):
        run = run_supervised(
            small_jobs(), n_workers=2,
            config=SupervisorConfig(retries=1),
            fault_plan=plan(FaultRule(kind="raise", match="mcf",
                                      attempts=99)))
        assert len(run.report) == 2  # both mcf cells poisoned
        assert all(f.attempts == 2 for f in run.report.failures)
        assert all(f.kind == "error" for f in run.report.failures)
        assert run.payloads == [None, None]
        rendered = run.report.render()
        assert "failed permanently" in rendered
        assert "mcf" in rendered
        assert run.report.to_dict()["failures"][0]["attempts"] == 2

    def test_fail_fast_raises_with_salvage(self):
        jobs = [job for _cell, job in WIDE.jobs(FAST)]
        with pytest.raises(SweepFailure) as info:
            run_supervised(
                jobs, n_workers=2,
                config=SupervisorConfig(retries=0, fail_fast=True),
                fault_plan=plan(FaultRule(kind="raise", match="canl",
                                          attempts=99)))
        # The exception still carries whatever completed first.
        assert info.value.report
        assert all(payload_ok(p)
                   for p in info.value.payloads.values())

    def test_run_jobs_wrapper_keeps_failfast_contract(self):
        with pytest.raises(SweepFailure):
            run_jobs(small_jobs(), n_workers=1,
                     supervisor=SupervisorConfig(retries=0),
                     fault_plan=plan(FaultRule(kind="raise",
                                               attempts=99)))


# ----------------------------------------------------------------------
# Engine-level chaos determinism (the headline invariant)
# ----------------------------------------------------------------------
class TestChaosDeterminism:
    def test_recovered_cache_is_byte_identical(self, tmp_path):
        clean = str(tmp_path / "clean.json")
        SweepEngine(FAST, cache_path=clean, jobs=2).run(WIDE)

        chaos = str(tmp_path / "chaos.json")
        chaos_plan = plan(
            FaultRule(kind="crash", match="mcf", attempts=1),
            FaultRule(kind="raise", match="canl", attempts=2),
            FaultRule(kind="corrupt", match="i-fam", attempts=1))
        engine = SweepEngine(FAST, cache_path=chaos, jobs=2)
        results = engine.run(WIDE, fault_plan=chaos_plan,
                             keep_going=True, checkpoint_every=1)
        assert engine.failures is None
        assert len(results) == 4
        assert canonical_cache_text(clean) == canonical_cache_text(chaos)

    def test_keep_going_skips_quarantined_cells(self, tmp_path):
        cache = str(tmp_path / "partial.json")
        engine = SweepEngine(FAST, cache_path=cache, jobs=2)
        results = engine.run(
            WIDE, keep_going=True,
            fault_plan=plan(FaultRule(kind="raise", match="mcf",
                                      attempts=99)),
            supervisor=SupervisorConfig(retries=0))
        assert len(results) == 2  # canl cells only
        assert engine.failures is not None and len(engine.failures) == 2
        # The healthy cells landed in the cache despite the failures.
        assert len(json.load(open(cache))) == 2

    def test_fail_fast_salvages_completed_cells(self, tmp_path):
        cache = str(tmp_path / "salvage.json")
        engine = SweepEngine(FAST, cache_path=cache, jobs=2)
        with pytest.raises(SweepFailure):
            engine.run(WIDE, keep_going=False,
                       fault_plan=plan(FaultRule(kind="raise",
                                                 match="canl",
                                                 attempts=99)),
                       supervisor=SupervisorConfig(retries=0,
                                                   fail_fast=True))
        on_disk = json.load(open(cache))
        assert on_disk  # completed cells flushed before the abort
        assert all(payload_ok(p) for p in on_disk.values())


# ----------------------------------------------------------------------
# Interrupts and checkpoint resume
# ----------------------------------------------------------------------
class TestInterruptAndResume:
    def test_interrupt_flushes_completed_to_cache(self, tmp_path):
        cache = str(tmp_path / "interrupted.json")
        fired = {"count": 0}

        def interrupt_after_two(done, total):
            fired["count"] = done
            if done == 2:
                raise KeyboardInterrupt

        engine = SweepEngine(FAST, cache_path=cache, jobs=2,
                             progress=interrupt_after_two)
        with pytest.raises(SweepInterrupted) as info:
            engine.run(WIDE)
        assert len(info.value.payloads) == 2
        on_disk = json.load(open(cache))
        assert len(on_disk) == 2
        assert all(payload_ok(p) for p in on_disk.values())

        # Resume: a fresh engine recalls the flushed cells and only
        # simulates the rest; the final cache matches a clean run.
        engine2 = SweepEngine(FAST, cache_path=cache, jobs=2)
        results = engine2.run(WIDE)
        assert len(results) == 4
        clean = str(tmp_path / "clean.json")
        SweepEngine(FAST, cache_path=clean, jobs=2).run(WIDE)
        assert canonical_cache_text(cache) == canonical_cache_text(clean)

    def test_checkpoints_flush_every_result(self, tmp_path):
        cache = str(tmp_path / "ckpt.json")
        sizes = []

        def watch(done, total):
            sizes.append(len(json.load(open(cache)))
                         if os.path.exists(cache) else 0)

        engine = SweepEngine(FAST, cache_path=cache, jobs=2,
                             progress=watch)
        engine.run(WIDE, checkpoint_every=1)
        # The cache grew during the run, not only at the end.
        assert sizes[-1] >= 3

    def test_sigterm_handler_installed_during_run(self):
        seen = {}

        def probe(index, payload):
            seen["handler"] = signal.getsignal(signal.SIGTERM)

        run_supervised(small_jobs()[:1], n_workers=1,
                       config=SupervisorConfig(), on_result=probe)
        assert callable(seen["handler"])
        assert seen["handler"] is not signal.SIG_DFL
        # ... and restored afterwards.
        assert signal.getsignal(signal.SIGTERM) is signal.SIG_DFL

    def test_sigterm_handler_is_one_shot(self):
        # Regression: ``timeout``/supervisors signal the whole process
        # group, so a *second* SIGTERM can land during the cleanup the
        # first one triggered.  The handler must disarm itself on first
        # delivery or the repeat aborts the bounded pool shutdown and
        # strands the interpreter in multiprocessing's atexit join.
        original = signal.getsignal(signal.SIGTERM)
        with pytest.raises(KeyboardInterrupt):
            with _sigterm_as_interrupt():
                try:
                    os.kill(os.getpid(), signal.SIGTERM)
                    time.sleep(1.0)  # pragma: no cover - delivery races
                except KeyboardInterrupt:
                    assert (signal.getsignal(signal.SIGTERM)
                            is signal.SIG_IGN)
                    # The repeat is dropped, not raised.
                    os.kill(os.getpid(), signal.SIGTERM)
                    raise
        assert signal.getsignal(signal.SIGTERM) is original

    def test_shield_defers_signals_during_cleanup(self):
        original = signal.getsignal(signal.SIGTERM)
        with _shield_signals():
            # A signal landing mid-cleanup is dropped instead of
            # aborting the salvage flush / worker teardown.
            os.kill(os.getpid(), signal.SIGTERM)
            assert signal.getsignal(signal.SIGINT) is signal.SIG_IGN
        assert signal.getsignal(signal.SIGTERM) is original
        assert signal.getsignal(signal.SIGINT) is not signal.SIG_IGN


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCliSurface:
    SPEC = ["--benchmark", "mcf", "--arch", "i-fam", "--arch", "deact-n",
            "--events", "1500", "--footprint-scale", "0.01", "--seed", "3"]

    def test_sweep_recovers_under_inline_plan(self, tmp_path, capsys):
        from repro.cli import main

        cache = str(tmp_path / "cli-chaos.json")
        code = main(["sweep", *self.SPEC, "--jobs", "2", "--cache", cache,
                     "--retries", "2", "--inject-faults",
                     '{"seed": 5, "faults": '
                     '[{"kind": "raise", "match": "mcf", "attempts": 1}]}'])
        assert code == 0
        assert len(json.load(open(cache))) == 2

    def test_sweep_quarantine_exits_nonzero_with_report(self, tmp_path,
                                                        capsys):
        from repro.cli import main

        cache = str(tmp_path / "cli-poison.json")
        code = main(["sweep", *self.SPEC, "--jobs", "2", "--cache", cache,
                     "--retries", "0", "--inject-faults",
                     '{"faults": '
                     '[{"kind": "raise", "match": "deact-n", '
                     '"attempts": 99}]}'])
        captured = capsys.readouterr()
        assert code == 1
        assert "failed permanently" in captured.err
        assert len(json.load(open(cache))) == 1  # healthy cell cached

    def test_bad_plan_and_flag_validation(self, tmp_path, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["sweep", *self.SPEC, "--inject-faults", "{nope"])
        with pytest.raises(SystemExit):
            main(["sweep", *self.SPEC, "--retries", "-1"])
        with pytest.raises(SystemExit):
            main(["sweep", *self.SPEC, "--job-timeout", "0"])
        with pytest.raises(SystemExit):
            main(["sweep", *self.SPEC, "--checkpoint-every", "-5"])

    def test_cache_validate_repair(self, tmp_path, capsys):
        from repro.cli import main

        cache = str(tmp_path / "heal.json")
        assert main(["sweep", *self.SPEC, "--jobs", "1",
                     "--cache", cache]) == 0
        entries = json.load(open(cache))
        victim = sorted(entries)[0]
        entries[victim] = {"garbage": True}
        entries["orphan-key"] = {"also": "garbage"}
        json.dump(entries, open(cache, "w"))
        open(f"{cache}.tmp.deadhost.1234", "w").write("{")

        code = main(["cache", "validate", "--cache", cache, "--repair",
                     *self.SPEC])
        captured = capsys.readouterr()
        assert code == 1  # repaired, but a cell is now missing
        assert "quarantined" in captured.out
        assert "1 dead temp file(s) removed" in captured.out
        assert not os.path.exists(f"{cache}.tmp.deadhost.1234")
        healed = json.load(open(cache))
        assert victim not in healed and "orphan-key" not in healed
        quarantine = str(tmp_path / "heal.quarantine.json")
        assert set(json.load(open(quarantine))) \
            == {victim, "orphan-key"}

        # Re-sweeping fills the hole; validate then passes.
        assert main(["sweep", *self.SPEC, "--jobs", "1",
                     "--cache", cache]) == 0
        capsys.readouterr()
        assert main(["cache", "validate", "--cache", cache,
                     *self.SPEC]) == 0
