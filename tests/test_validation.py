"""Tests for the shape-validation module, including full-scale claim
checks against the cached experiment results."""

import os

import pytest

from repro.experiments.figures import (
    figure3,
    figure4,
    figure9,
    figure10,
    figure11,
    figure12,
)
from repro.experiments.report import FigureResult, Row
from repro.experiments.runner import ExperimentRunner, RunSettings
from repro.experiments.validation import (
    CLAIMS,
    check_figure,
    OUTLIERS,
    INSENSITIVE,
)

_CACHE = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "results", "run_cache.json")


class TestClaimMachinery:
    def test_unknown_figure_has_no_claims(self):
        figure = FigureResult("figZZ", "t", [], [])
        assert check_figure(figure) == []

    def test_failing_claim_reported(self):
        # Build a fig4 where I-FAM does NOT add AT traffic.
        figure = FigureResult(
            "fig4", "t", ["E-FAM", "I-FAM"],
            [Row("mcf", {"E-FAM": 50.0, "I-FAM": 10.0})])
        outcomes = check_figure(figure)
        assert len(outcomes) == 1
        assert not outcomes[0].passed

    def test_missing_data_is_failure_not_crash(self):
        figure = FigureResult("fig4", "t", ["E-FAM"],
                              [Row("mcf", {"E-FAM": 50.0})])
        outcomes = check_figure(figure)
        assert not outcomes[0].passed

    def test_claim_registry_covers_main_figures(self):
        for figure_id in ("fig3", "fig4", "fig9", "fig10", "fig11",
                          "fig12", "fig13", "fig15", "fig16"):
            assert CLAIMS[figure_id], figure_id

    def test_outlier_and_insensitive_sets_disjoint(self):
        assert not set(OUTLIERS) & set(INSENSITIVE)


@pytest.mark.skipif(not os.path.exists(_CACHE),
                    reason="full-scale result cache not present")
class TestFullScaleClaims:
    """The paper's claims hold at the harness's full experiment scale.

    These read the memoized results produced by
    ``scripts/generate_experiments_md.py`` — no simulation happens
    here, so the tests are fast while asserting the real numbers
    recorded in EXPERIMENTS.md.
    """

    @pytest.fixture(scope="class")
    def runner(self):
        settings = RunSettings(n_events=150_000, footprint_scale=0.12,
                               seed=7)
        return ExperimentRunner(settings, cache_path=_CACHE)

    @pytest.fixture(scope="class")
    def figures(self, runner):
        return {
            "fig3": figure3(runner),
            "fig4": figure4(runner),
            "fig9": figure9(runner),
            "fig10": figure10(runner),
            "fig11": figure11(runner),
            "fig12": figure12(runner),
        }

    @pytest.mark.parametrize("figure_id", ["fig3", "fig4", "fig9",
                                           "fig10", "fig11", "fig12"])
    def test_all_claims_hold(self, figures, figure_id):
        outcomes = check_figure(figures[figure_id])
        failures = [o.claim.description for o in outcomes if not o.passed]
        assert not failures, f"{figure_id} claims failed: {failures}"
