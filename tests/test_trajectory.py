"""Tests for the append-only bench trajectory and regression verdicts.

Entries here are fabricated (no simulation): append semantics, the
schema-1 auto-upgrade, settings-fingerprint refusal, and verdict math
are pure bookkeeping over payload dicts.  The end-to-end path through
``deact bench`` lives in ``tests/test_cli.py``; the real measurement
append lives in ``benchmarks/test_bench_core_loop.py``.
"""

import json
import os

import pytest

from repro.errors import BenchSettingsMismatch, BenchTrajectoryError
from repro.experiments.provenance import (
    PROVENANCE_FIELDS,
    collect_provenance,
    git_toplevel,
)
from repro.experiments.trajectory import (
    DEFAULT_TOLERANCES,
    TRAJECTORY_SCHEMA,
    append_entry,
    batch_floor_verdicts,
    compare_entries,
    entry_from_payload,
    latest_entry,
    load_trajectory,
    runner_pinned,
    select_comparable,
    settings_fingerprint,
    write_trajectory,
)


def make_payload(n_events=4000, benchmarks=("hot-loop",),
                 architectures=("deact-n",),
                 tiers=("reference", "fast", "batch"), scale=1.0):
    """A structurally faithful measurement payload, no simulation."""
    rows = []
    for benchmark in benchmarks:
        for architecture in architectures:
            for position, tier in enumerate(tiers):
                eps = 1000.0 * (position + 1) * scale
                rows.append({
                    "benchmark": benchmark,
                    "architecture": architecture,
                    "tier": tier,
                    "wall_s": n_events / eps,
                    "events_per_sec": eps,
                    "identical_to_first_tier": True,
                })
    return {
        "schema": 1,
        "settings": {"n_events": n_events, "footprint_scale": 0.06,
                     "seed": 13, "repeats": 3},
        "benchmarks": list(benchmarks),
        "architectures": list(architectures),
        "tiers": list(tiers),
        "rows": rows,
        "aggregates": {},
    }


class TestAppend:
    def test_append_creates_schema2_file(self, tmp_path):
        path = str(tmp_path / "traj.json")
        entry = append_entry(path, make_payload())
        data = json.loads(open(path).read())
        assert data["schema"] == TRAJECTORY_SCHEMA
        assert len(data["entries"]) == 1
        assert "schema" not in data["entries"][0]
        assert entry["settings_fingerprint"]

    def test_append_twice_keeps_both_entries(self, tmp_path):
        path = str(tmp_path / "traj.json")
        append_entry(path, make_payload(scale=1.0))
        append_entry(path, make_payload(scale=2.0))
        trajectory = load_trajectory(path)
        assert len(trajectory["entries"]) == 2
        rates = [trajectory["entries"][i]["rows"][0]["events_per_sec"]
                 for i in (0, 1)]
        assert rates[1] == 2 * rates[0]  # order preserved, no overwrite

    def test_append_stamps_provenance(self, tmp_path):
        path = str(tmp_path / "traj.json")
        entry = append_entry(path, make_payload())
        prov = entry["provenance"]
        assert set(prov) == set(PROVENANCE_FIELDS)
        assert prov["hostname"]
        assert prov["pid"] == os.getpid()

    def test_append_leaves_no_temp_files(self, tmp_path):
        path = str(tmp_path / "traj.json")
        append_entry(path, make_payload())
        append_entry(path, make_payload())
        assert sorted(p.name for p in tmp_path.iterdir()) == ["traj.json"]

    def test_append_refuses_corrupt_history(self, tmp_path):
        # A corrupt trajectory is irreplaceable history: append must
        # raise, not treat it as empty and overwrite it.
        path = tmp_path / "traj.json"
        path.write_text("{truncated")
        with pytest.raises(BenchTrajectoryError, match="unreadable"):
            append_entry(str(path), make_payload())
        assert path.read_text() == "{truncated"


class TestSchema1Upgrade:
    def test_schema1_payload_becomes_single_legacy_entry(self, tmp_path):
        path = tmp_path / "traj.json"
        path.write_text(json.dumps(make_payload()))
        trajectory = load_trajectory(str(path))
        assert trajectory["schema"] == TRAJECTORY_SCHEMA
        (entry,) = trajectory["entries"]
        assert entry["provenance"] is None  # producing host is unknown
        assert entry["settings_fingerprint"]
        assert "schema" not in entry

    def test_append_after_upgrade_preserves_legacy_entry(self, tmp_path):
        path = tmp_path / "traj.json"
        path.write_text(json.dumps(make_payload()))
        append_entry(str(path), make_payload(scale=3.0))
        trajectory = load_trajectory(str(path))
        assert len(trajectory["entries"]) == 2
        assert trajectory["entries"][0]["provenance"] is None
        assert trajectory["entries"][1]["provenance"]["hostname"]

    def test_missing_file_is_empty_trajectory(self, tmp_path):
        trajectory = load_trajectory(str(tmp_path / "absent.json"))
        assert trajectory == {"schema": TRAJECTORY_SCHEMA, "entries": []}

    @pytest.mark.parametrize("text", [
        "[1, 2]",                                  # not an object
        json.dumps({"schema": 7, "entries": []}),  # unknown schema
        json.dumps({"schema": 1}),                 # schema 1, no rows
        json.dumps({"schema": 2, "entries": [{"no": "rows"}]}),
    ])
    def test_structurally_invalid_trajectories_raise(self, tmp_path, text):
        path = tmp_path / "traj.json"
        path.write_text(text)
        with pytest.raises(BenchTrajectoryError):
            load_trajectory(str(path))


class TestFingerprint:
    def test_order_insensitive_for_cell_sets(self):
        a = make_payload(architectures=("e-fam", "i-fam"))
        b = make_payload(architectures=("i-fam", "e-fam"))
        assert settings_fingerprint(a) == settings_fingerprint(b)

    def test_sensitive_to_events(self):
        # n_events drives the hot-loop footprint halving: different
        # event counts are different measurement regimes.
        assert settings_fingerprint(make_payload(n_events=4000)) != \
            settings_fingerprint(make_payload(n_events=16000))

    def test_sensitive_to_benchmark_set(self):
        assert settings_fingerprint(make_payload(benchmarks=("lu",))) != \
            settings_fingerprint(make_payload(benchmarks=("lu", "bc")))


class TestCompare:
    def test_parity_is_ok(self):
        base = entry_from_payload(make_payload())
        cand = entry_from_payload(make_payload())
        report = compare_entries(base, cand)
        assert report.ok
        assert not report.regressions
        assert "0 of 3 cell(s) regressed" in report.render()

    def test_slowdown_beyond_tolerance_regresses(self):
        base = entry_from_payload(make_payload(scale=1.0))
        cand = entry_from_payload(make_payload(scale=0.5))  # 2x slower
        report = compare_entries(base, cand)
        assert not report.ok
        assert len(report.regressions) == 3  # every tier cell
        assert "REGRESSED" in report.render()

    def test_slowdown_within_tolerance_is_ok(self):
        base = entry_from_payload(make_payload(scale=1.0))
        cand = entry_from_payload(make_payload(scale=0.9))
        assert compare_entries(base, cand).ok

    def test_speedup_is_ok(self):
        base = entry_from_payload(make_payload(scale=1.0))
        cand = entry_from_payload(make_payload(scale=4.0))
        report = compare_entries(base, cand)
        assert report.ok
        assert all(cell.ratio == pytest.approx(4.0)
                   for cell in report.cells)

    def test_per_tier_tolerance_override(self):
        base = entry_from_payload(make_payload(scale=1.0))
        cand = entry_from_payload(make_payload(scale=0.6))
        strict = compare_entries(base, cand)
        assert not strict.ok
        lax = compare_entries(
            base, cand,
            tolerances={tier: 0.5 for tier in DEFAULT_TOLERANCES})
        assert lax.ok

    def test_default_key_sets_unknown_tier_tolerance(self):
        tiers = ("custom-tier",)
        base = entry_from_payload(make_payload(tiers=tiers, scale=1.0))
        cand = entry_from_payload(make_payload(tiers=tiers, scale=0.7))
        assert not compare_entries(base, cand).ok
        assert compare_entries(base, cand,
                               tolerances={"default": 0.4}).ok

    def test_refuses_mismatched_settings(self):
        base = entry_from_payload(make_payload(n_events=16000))
        cand = entry_from_payload(make_payload(n_events=4000))
        with pytest.raises(BenchSettingsMismatch, match="refusing"):
            compare_entries(base, cand)

    def test_refuses_disjoint_cells(self):
        # Same settings fingerprint is a precondition, so disjoint
        # cells can only happen with hand-built entries — still an
        # error, not an empty "all clear" report.
        base = entry_from_payload(make_payload())
        cand = entry_from_payload(make_payload())
        cand["rows"] = [dict(row, benchmark="other")
                        for row in cand["rows"]]
        with pytest.raises(BenchTrajectoryError, match="no .* cells"):
            compare_entries(base, cand)


class TestSelection:
    def test_latest_entry_is_newest(self, tmp_path):
        path = str(tmp_path / "traj.json")
        append_entry(path, make_payload(scale=1.0))
        append_entry(path, make_payload(scale=2.0))
        entry = latest_entry(load_trajectory(path))
        assert entry["rows"][0]["events_per_sec"] == 2000.0

    def test_latest_entry_filters_by_fingerprint(self, tmp_path):
        path = str(tmp_path / "traj.json")
        append_entry(path, make_payload(n_events=16000, scale=1.0))
        append_entry(path, make_payload(n_events=4000, scale=2.0))
        fp = settings_fingerprint(make_payload(n_events=16000))
        entry = latest_entry(load_trajectory(path), fingerprint=fp)
        assert entry["settings"]["n_events"] == 16000

    def test_select_comparable_refuses_foreign_regime(self, tmp_path):
        path = str(tmp_path / "traj.json")
        append_entry(path, make_payload(n_events=16000))
        candidate = entry_from_payload(make_payload(n_events=4000))
        with pytest.raises(BenchSettingsMismatch, match="meaningless"):
            select_comparable(load_trajectory(path), candidate, path)

    def test_select_comparable_skips_newer_foreign_entries(self, tmp_path):
        path = str(tmp_path / "traj.json")
        append_entry(path, make_payload(n_events=16000, scale=1.0))
        append_entry(path, make_payload(n_events=4000, scale=9.0))
        candidate = entry_from_payload(make_payload(n_events=16000,
                                                    scale=1.1))
        baseline = select_comparable(load_trajectory(path), candidate,
                                     path)
        assert baseline["settings"]["n_events"] == 16000

    def test_empty_trajectory_has_no_latest(self):
        assert latest_entry({"schema": 2, "entries": []}) is None

    @staticmethod
    def _entry_from_host(host, scale):
        entry = entry_from_payload(make_payload(scale=scale))
        entry["provenance"] = dict(entry["provenance"], hostname=host)
        return entry

    def test_select_comparable_prefers_this_hosts_entries(self):
        # Throughput baselines are machine-specific: a newer entry
        # appended by a different (faster) host must not become the
        # yardstick when same-host history exists.
        trajectory = {"schema": 2, "entries": [
            self._entry_from_host("ours", 1.0),
            self._entry_from_host("ours", 1.1),
            self._entry_from_host("fast-ci-box", 9.0),
        ]}
        candidate = entry_from_payload(make_payload(scale=1.05))
        picked = select_comparable(trajectory, candidate, "traj",
                                   hostname="ours")
        assert picked["provenance"]["hostname"] == "ours"
        assert picked["rows"][0]["events_per_sec"] == 1100.0  # newest ours

    def test_select_comparable_falls_back_to_newest_match(self):
        # First run on this host (or legacy null-provenance entries):
        # the newest fingerprint match still gates, coarsely.
        trajectory = {"schema": 2, "entries": [
            self._entry_from_host("other-a", 1.0),
            self._entry_from_host("other-b", 2.0),
        ]}
        candidate = entry_from_payload(make_payload(scale=1.9))
        picked = select_comparable(trajectory, candidate, "traj",
                                   hostname="brand-new-host")
        assert picked["provenance"]["hostname"] == "other-b"


class TestRunnerPinned:
    """``runner_pinned`` — when CI history is deep enough to drop the
    cross-host fallback tolerance for the per-tier defaults."""

    @staticmethod
    def _entry_from_host(host, n_events=4000):
        entry = entry_from_payload(make_payload(n_events=n_events))
        entry["provenance"] = dict(entry["provenance"], hostname=host)
        return entry

    def test_two_same_host_entries_pin(self):
        trajectory = {"schema": 2, "entries": [
            self._entry_from_host("runner"),
            self._entry_from_host("runner"),
        ]}
        candidate = entry_from_payload(make_payload())
        assert runner_pinned(trajectory, candidate, hostname="runner")

    def test_one_entry_is_not_enough(self):
        # A single entry might itself be an outlier; two establish
        # the regime exists on this runner.
        trajectory = {"schema": 2, "entries": [
            self._entry_from_host("runner"),
        ]}
        candidate = entry_from_payload(make_payload())
        assert not runner_pinned(trajectory, candidate,
                                 hostname="runner")

    def test_other_hosts_never_pin(self):
        trajectory = {"schema": 2, "entries": [
            self._entry_from_host("box-a"),
            self._entry_from_host("box-a"),
            self._entry_from_host("box-b"),
        ]}
        candidate = entry_from_payload(make_payload())
        assert not runner_pinned(trajectory, candidate,
                                 hostname="runner")

    def test_foreign_regime_entries_do_not_count(self):
        # Same host, different settings fingerprint: not comparable,
        # so not pinning.
        trajectory = {"schema": 2, "entries": [
            self._entry_from_host("runner", n_events=4000),
            self._entry_from_host("runner", n_events=16000),
        ]}
        candidate = entry_from_payload(make_payload(n_events=4000))
        assert not runner_pinned(trajectory, candidate,
                                 hostname="runner")

    def test_null_provenance_entries_do_not_count(self):
        # Legacy schema-1 upgrades carry provenance=None.
        entry = entry_from_payload(make_payload())
        entry["provenance"] = None
        trajectory = {"schema": 2, "entries": [entry, dict(entry)]}
        candidate = entry_from_payload(make_payload())
        assert not runner_pinned(trajectory, candidate,
                                 hostname="runner")

    def test_empty_trajectory_is_unpinned(self):
        candidate = entry_from_payload(make_payload())
        assert not runner_pinned({"schema": 2, "entries": []},
                                 candidate, hostname="runner")


class TestBatchFloor:
    @staticmethod
    def _entry(aggregates):
        entry = entry_from_payload(make_payload())
        entry["aggregates"] = aggregates
        return entry

    def test_floor_met(self):
        entry = self._entry({"hot-loop": {"batch_speedup_vs_fast": 3.4}})
        (verdict,) = batch_floor_verdicts(entry, {"hot-loop": 3.0})
        assert verdict.ok
        assert "ok" in verdict.render()

    def test_floor_missed(self):
        entry = self._entry({"hot-loop": {"batch_speedup_vs_fast": 0.8}})
        (verdict,) = batch_floor_verdicts(entry, {"hot-loop": 1.0})
        assert not verdict.ok
        assert "BELOW FLOOR" in verdict.render()

    def test_missing_aggregate_fails_not_skips(self):
        # A gate that vanishes when the measurement shrinks is no
        # gate: an unmeasured benchmark is a failing verdict.
        entry = self._entry({})
        (verdict,) = batch_floor_verdicts(entry, {"lu": 1.0})
        assert not verdict.ok
        assert verdict.speedup is None

    def test_sorted_and_complete(self):
        entry = self._entry({
            "bc": {"batch_speedup_vs_fast": 1.2},
            "lu": {"batch_speedup_vs_fast": 1.1},
        })
        verdicts = batch_floor_verdicts(entry, {"lu": 1.0, "bc": 1.0})
        assert [v.benchmark for v in verdicts] == ["bc", "lu"]
        assert all(v.ok for v in verdicts)


class TestProvenanceRoundTrip:
    def test_collect_provenance_contract(self):
        prov = collect_provenance()
        assert set(prov) == set(PROVENANCE_FIELDS)
        assert prov["pid"] == os.getpid()
        assert prov["python"].count(".") == 2
        assert prov["numpy"]

    def test_git_fields_inside_this_checkout(self):
        prov = collect_provenance(os.path.dirname(__file__))
        if prov["git_commit"] is not None:  # tolerate exported trees
            assert len(prov["git_commit"]) == 40
            assert isinstance(prov["git_dirty"], bool)

    def test_git_fields_none_outside_git(self, tmp_path):
        prov = collect_provenance(str(tmp_path))
        assert prov["git_commit"] is None
        assert prov["git_dirty"] is None
        assert prov["hostname"]  # host facts survive without git

    def test_entry_provenance_survives_disk_round_trip(self, tmp_path):
        path = str(tmp_path / "traj.json")
        written = append_entry(path, make_payload())
        loaded = latest_entry(load_trajectory(path))
        assert loaded["provenance"] == written["provenance"]


class TestDefaultJsonPath:
    def test_env_override_wins(self, monkeypatch):
        from repro.experiments.bench import default_json_path

        monkeypatch.setenv("REPRO_BENCH_JSON", "/elsewhere/t.json")
        assert default_json_path() == "/elsewhere/t.json"

    def test_git_toplevel_inside_checkout(self, monkeypatch):
        from repro.experiments.bench import default_json_path

        monkeypatch.delenv("REPRO_BENCH_JSON", raising=False)
        top = git_toplevel()
        if top is None:
            pytest.skip("not running inside a git checkout")
        monkeypatch.chdir(top)
        assert default_json_path() == \
            os.path.join(top, "BENCH_core_loop.json")

    def test_cwd_fallback_outside_git(self, monkeypatch, tmp_path):
        from repro.experiments.bench import default_json_path

        monkeypatch.delenv("REPRO_BENCH_JSON", raising=False)
        monkeypatch.chdir(tmp_path)
        if git_toplevel() is not None:
            pytest.skip("tmp_path unexpectedly inside a git checkout")
        assert default_json_path() == \
            str(tmp_path / "BENCH_core_loop.json")

    def test_never_points_into_site_packages(self, monkeypatch):
        # The regression this fixes: deriving the root from the
        # module __file__ lands in site-packages for installed
        # packages.  Whatever the fallback picks, it must be anchored
        # to the environment, not to the module location.
        from repro.experiments import bench

        monkeypatch.delenv("REPRO_BENCH_JSON", raising=False)
        module_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(bench.__file__)))))
        path = bench.default_json_path()
        assert path in (
            os.path.join(git_toplevel() or os.getcwd(),
                         "BENCH_core_loop.json"),
        )
        assert not path.startswith(os.path.join(module_root,
                                                "site-packages"))


class TestWriteTrajectory:
    def test_round_trip_is_stable(self, tmp_path):
        path = str(tmp_path / "traj.json")
        append_entry(path, make_payload())
        first = open(path).read()
        write_trajectory(path, load_trajectory(path))
        assert open(path).read() == first
