"""Tests for the STU: cache organizations and the unit itself."""

import itertools

import pytest

from repro.acm.metadata import PERM_RO, PERM_RW, Permission
from repro.acm.layout import FamLayout
from repro.acm.store import AcmStore
from repro.config.system import FabricConfig, FamConfig, GIB, StuConfig
from repro.errors import AccessViolationError, ProtocolError
from repro.fabric.network import FabricNetwork
from repro.mem.device import NvmDevice
from repro.pagetable.walker import PageTableWalker
from repro.pagetable.x86 import FourLevelPageTable
from repro.stu.organizations import (
    DeactNAcmCache,
    DeactWAcmCache,
    IFamStuCache,
)
from repro.stu.stu import Stu


def small_stu_config(**overrides):
    defaults = dict(entries=16, associativity=4)
    defaults.update(overrides)
    return StuConfig(**defaults)


class TestIFamOrganization:
    def test_install_lookup(self):
        cache = IFamStuCache(small_stu_config())
        assert cache.lookup(5) is None
        cache.install(5, 500)
        assert cache.lookup(5) == 500

    def test_capacity_coverage(self):
        cache = IFamStuCache(small_stu_config())
        assert cache.coverage_pages == 16

    def test_eviction_by_capacity(self):
        config = small_stu_config()
        cache = IFamStuCache(config)
        # Fill one set (4 ways): keys congruent mod n_sets.
        n_sets = config.n_sets
        keys = [i * n_sets for i in range(5)]
        for key in keys:
            cache.install(key, key)
        resident = [k for k in keys if cache.lookup(k) is not None]
        assert len(resident) == 4

    def test_invalidate(self):
        cache = IFamStuCache(small_stu_config())
        cache.install(5, 500)
        assert cache.invalidate_node_page(5)
        assert cache.lookup(5) is None


class TestDeactWOrganization:
    def test_group_covers_contiguous_pages(self):
        """16-bit ACM: one way covers 4 contiguous FAM pages (52 // 16
        = 3 extra + the tagged one; the paper rounds to 4)."""
        cache = DeactWAcmCache(small_stu_config(acm_bits=16))
        assert cache.pages_per_way == 3  # 52 // 16
        cache.install(0)
        assert cache.lookup(1)   # same group
        assert cache.lookup(2)
        assert not cache.lookup(3)  # next group

    def test_width_changes_group_size(self):
        assert DeactWAcmCache(small_stu_config(acm_bits=8)).pages_per_way == 6
        assert DeactWAcmCache(small_stu_config(acm_bits=32)).pages_per_way == 1

    def test_coverage_scales_with_group(self):
        cache = DeactWAcmCache(small_stu_config(acm_bits=16))
        assert cache.coverage_pages == 16 * 3

    def test_scattered_pages_waste_capacity(self):
        """Random (non-contiguous) pages: each occupies a whole way —
        the paper's DeACT-W failure mode."""
        cache = DeactWAcmCache(small_stu_config(acm_bits=16))
        pages = [i * 1000 for i in range(30)]
        for page in pages:
            cache.install(page)
        resident = sum(cache.lookup(p) for p in pages)
        assert resident <= 16  # no better than entry count


class TestDeactNOrganization:
    def test_subways_double_capacity(self):
        config = small_stu_config(subways_per_way=2)
        cache = DeactNAcmCache(config)
        assert cache.coverage_pages == 32

    def test_non_contiguous_pages_all_fit(self):
        cache = DeactNAcmCache(small_stu_config(subways_per_way=2))
        n_sets = small_stu_config().n_sets
        pages = [i * n_sets * 1000 + 3 for i in range(8)]
        for page in pages:
            cache.install(page)
        assert all(cache.lookup(p) for p in pages[-8:])

    def test_one_subway_matches_physical_ways(self):
        cache = DeactNAcmCache(small_stu_config(subways_per_way=1))
        assert cache.coverage_pages == 16


def build_stu(organization, acm_bits=16, node_id=0):
    layout = FamLayout(1 * GIB, acm_bits=acm_bits)
    store = AcmStore(layout)
    counter = itertools.count(1000)
    table = FourLevelPageTable(lambda: next(counter) * 4096)
    walker = PageTableWalker(table, cache_entries=0)
    fabric = FabricNetwork(FabricConfig())
    fam = NvmDevice(FamConfig(capacity_bytes=1 * GIB))
    config = small_stu_config(acm_bits=acm_bits)
    stu = Stu(node_id, config, store, walker, fabric, fam, organization,
              name="stu-test")
    return stu, store, table


class TestStuWalks:
    def test_walk_returns_mapping_and_serial_time(self):
        stu, _store, table = build_stu(IFamStuCache(small_stu_config()))
        table.map(0x42, 777)
        timing = stu.walk_system_table(0x42, now=0.0)
        assert timing.fam_page == 777
        assert timing.memory_accesses == 4
        # Four serial FAM round trips: > 4 * (400 + 60 + 400).
        assert timing.completion_ns > 4 * 860

    def test_concurrent_walks_serialize_at_ptw_unit(self):
        stu, _store, table = build_stu(IFamStuCache(small_stu_config()))
        table.map(0x1, 1)
        table.map(0x2, 2)
        first = stu.walk_system_table(0x1, now=0.0)
        second = stu.walk_system_table(0x2, now=0.0)
        # The second walk queues behind the first.
        assert second.completion_ns >= first.completion_ns + 4 * 860

    def test_ifam_translate_hit_skips_walk(self):
        stu, _store, table = build_stu(IFamStuCache(small_stu_config()))
        table.map(0x42, 777)
        stu.ifam_translate(0x42, now=0.0)
        fam_page, t, hit = stu.ifam_translate(0x42, now=100.0)
        assert hit
        assert fam_page == 777
        assert t == pytest.approx(100.0 + stu.config.lookup_ns)

    def test_ifam_translate_needs_ifam_cache(self):
        stu, _store, _table = build_stu(
            DeactNAcmCache(small_stu_config()))
        with pytest.raises(ProtocolError):
            stu.ifam_translate(0x1, now=0.0)


class TestStuVerification:
    def test_owner_access_allowed(self):
        stu, store, _table = build_stu(DeactNAcmCache(small_stu_config()))
        store.set_owner(10, node_id=0, perm_code=PERM_RW)
        result = stu.verify_access(10 * 4096, now=0.0,
                                   needed=Permission.WRITE)
        assert result.allowed
        assert not result.acm_hit  # cold cache: fetched from FAM

    def test_acm_cached_on_second_access(self):
        stu, store, _table = build_stu(DeactNAcmCache(small_stu_config()))
        store.set_owner(10, node_id=0, perm_code=PERM_RW)
        stu.verify_access(10 * 4096, now=0.0)
        result = stu.verify_access(10 * 4096, now=5000.0)
        assert result.acm_hit
        # Cached check is just the lookup latency.
        assert result.completion_ns == pytest.approx(
            5000.0 + stu.config.lookup_ns)

    def test_foreign_access_raises(self):
        stu, store, _table = build_stu(DeactNAcmCache(small_stu_config()))
        store.set_owner(10, node_id=3, perm_code=PERM_RW)  # owned by 3
        with pytest.raises(AccessViolationError):
            stu.verify_access(10 * 4096, now=0.0)

    def test_enforce_false_reports_without_raising(self):
        stu, store, _table = build_stu(DeactNAcmCache(small_stu_config()))
        store.set_owner(10, node_id=3, perm_code=PERM_RW)
        result = stu.verify_access(10 * 4096, now=0.0, enforce=False)
        assert not result.allowed
        assert stu.stats.get("violations") == 1

    def test_write_needs_write_permission(self):
        stu, store, _table = build_stu(DeactNAcmCache(small_stu_config()))
        store.set_owner(10, node_id=0, perm_code=PERM_RO)
        assert stu.verify_access(10 * 4096, now=0.0,
                                 needed=Permission.READ).allowed
        with pytest.raises(AccessViolationError):
            stu.verify_access(10 * 4096, now=0.0, needed=Permission.WRITE)

    def test_shared_page_fetches_bitmap(self):
        stu, store, _table = build_stu(DeactNAcmCache(small_stu_config()))
        store.mark_shared(10)
        store.bitmap_for_region(0).grant(0, PERM_RW)
        result = stu.verify_access(10 * 4096, now=0.0)
        assert result.allowed
        assert result.bitmap_fetched
        assert stu.stats.get("bitmap_fetches") == 1

    def test_verify_needs_deact_cache(self):
        stu, _store, _table = build_stu(IFamStuCache(small_stu_config()))
        with pytest.raises(ProtocolError):
            stu.verify_access(4096, now=0.0)

    def test_invalidate_fam_page_drops_acm(self):
        stu, store, _table = build_stu(DeactNAcmCache(small_stu_config()))
        store.set_owner(10, node_id=0, perm_code=PERM_RW)
        stu.verify_access(10 * 4096, now=0.0)
        stu.invalidate_fam_page(10)
        result = stu.verify_access(10 * 4096, now=10_000.0)
        assert not result.acm_hit
