"""Unit tests for result containers and the exception hierarchy."""

import pytest

from repro.core.results import NodeMetrics, RunResult
from repro.errors import (
    AccessViolationError,
    AllocationError,
    ConfigError,
    ProtocolError,
    ReproError,
    TraceError,
    TranslationFault,
)


def metrics(node_id=0, instructions=1000, cycles=500.0, **kw):
    defaults = dict(memory_accesses=100, runtime_ns=250.0)
    defaults.update(kw)
    return NodeMetrics(node_id=node_id, instructions=instructions,
                       cycles=cycles, **defaults)


def result(arch="e-fam", ipc_cycles=500.0):
    return RunResult(architecture=arch, benchmark="b",
                     nodes=[metrics(cycles=ipc_cycles)],
                     fam_counters={"accesses": 100.0,
                                   "at_accesses": 25.0})


class TestNodeMetrics:
    def test_ipc(self):
        assert metrics(instructions=1000, cycles=500.0).ipc == 2.0

    def test_zero_cycles_ipc(self):
        assert metrics(cycles=0.0).ipc == 0.0


class TestRunResult:
    def test_aggregate_ipc_uses_slowest_node(self):
        run = RunResult("e-fam", "b", nodes=[
            metrics(node_id=0, instructions=100, cycles=100.0),
            metrics(node_id=1, instructions=100, cycles=400.0),
        ])
        assert run.ipc == pytest.approx(200 / 400.0)

    def test_runtime_is_max(self):
        run = RunResult("e-fam", "b", nodes=[
            metrics(node_id=0, runtime_ns=10.0),
            metrics(node_id=1, runtime_ns=99.0),
        ])
        assert run.runtime_ns == 99.0

    def test_at_fraction(self):
        assert result().fam_at_fraction == 0.25

    def test_at_fraction_empty(self):
        run = RunResult("e-fam", "b", nodes=[metrics()])
        assert run.fam_at_fraction == 0.0

    def test_speedup_and_normalized(self):
        fast = result(ipc_cycles=250.0)   # ipc 4
        slow = result(ipc_cycles=1000.0)  # ipc 1
        assert fast.speedup_over(slow) == pytest.approx(4.0)
        assert slow.normalized_performance(fast) == pytest.approx(0.25)
        assert slow.slowdown_vs(fast) == pytest.approx(4.0)

    def test_degenerate_comparisons(self):
        empty = RunResult("e-fam", "b", nodes=[metrics(cycles=0.0)])
        assert empty.speedup_over(result()) == 0.0 or \
            empty.speedup_over(result()) >= 0.0
        assert result().speedup_over(empty) == 0.0
        assert empty.slowdown_vs(result()) == float("inf")

    def test_mpki(self):
        run = RunResult("e-fam", "b",
                        nodes=[metrics(llc_misses=50)])
        assert run.mpki == pytest.approx(50.0)  # 50 / 1000 instr * 1000


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        ConfigError, AllocationError, TranslationFault,
        AccessViolationError, ProtocolError, TraceError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_access_violation_carries_context(self):
        error = AccessViolationError("denied", node_id=3,
                                     fam_addr=0x1000)
        assert error.node_id == 3
        assert error.fam_addr == 0x1000

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise AllocationError("boom")
