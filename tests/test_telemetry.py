"""Per-job timing telemetry: capture, persistence, aggregation.

Telemetry (wall time, events/sec, tag-store probe counts) is
measurement metadata attached to every executed run.  It must flow
into the on-disk result cache and back out on recall, surface in the
CLI and reports, and — critically — never participate in result
equality: two runs of the same job serialize bit-identically even
though their wall clocks differ.
"""

import json

from repro.config.presets import default_config
from repro.core.results import NodeMetrics, RunResult
from repro.experiments.report import render_telemetry
from repro.experiments.runner import (
    ExperimentRunner,
    RunSettings,
    SweepJob,
    _result_from_dict,
    _result_to_dict,
    execute_job,
)

FAST = RunSettings(n_events=1200, footprint_scale=0.01, seed=3)

TELEMETRY_KEYS = ("wall_s", "events", "events_per_sec", "tag_probes",
                  "probes_per_event")


class TestCapture:
    def test_runner_attaches_telemetry(self):
        result = ExperimentRunner(FAST).run("mcf", "deact-n")
        assert result.telemetry is not None
        for key in TELEMETRY_KEYS:
            assert key in result.telemetry
        assert result.telemetry["events"] == FAST.n_events
        assert result.telemetry["wall_s"] > 0
        assert result.telemetry["events_per_sec"] > 0
        # A dozen probes per trace event is the design point; anything
        # below 1/event means the census is broken.
        assert result.telemetry["probes_per_event"] > 1.0

    def test_worker_payload_carries_telemetry(self):
        payload = execute_job(
            SweepJob("mg", "e-fam", default_config(), FAST))
        telemetry = payload["telemetry"]
        for key in TELEMETRY_KEYS:
            assert key in telemetry
        assert telemetry["trace_build_s"] >= 0.0

    def test_tag_probe_census_counts_translation_structures(self):
        from repro.core.system import FamSystem
        from repro.experiments.runner import build_traces

        traces = build_traces("mcf", 1, FAST)
        system = FamSystem(default_config(), "deact-n", seed=99)
        system.run(traces, benchmark="mcf")
        probes = system.tag_store_probes()
        node = system.nodes[0]
        # At minimum: one TLB probe and one L1 probe per event.
        assert probes >= 2 * FAST.n_events
        assert probes == node.tag_store_probes()


class TestEqualitySemantics:
    def test_result_to_dict_excludes_telemetry(self):
        result = ExperimentRunner(FAST).run("mcf", "e-fam")
        assert result.telemetry is not None
        assert "telemetry" not in _result_to_dict(result)

    def test_runresult_equality_ignores_telemetry(self):
        nodes = [NodeMetrics(node_id=0, instructions=10,
                             memory_accesses=5, cycles=1.0,
                             runtime_ns=2.0)]
        a = RunResult("e-fam", "mcf", nodes, telemetry={"wall_s": 1.0})
        b = RunResult("e-fam", "mcf", list(nodes),
                      telemetry={"wall_s": 9.0})
        assert a == b

    def test_two_executions_serialize_identically(self):
        first = execute_job(SweepJob("mcf", "e-fam", default_config(),
                                     FAST))
        second = execute_job(SweepJob("mcf", "e-fam", default_config(),
                                      FAST))
        first.pop("telemetry")
        second.pop("telemetry")
        assert first == second


class TestPersistence:
    def test_cache_round_trips_telemetry(self, tmp_path):
        cache = str(tmp_path / "cache.json")
        executed = ExperimentRunner(FAST, cache_path=cache).run(
            "mcf", "i-fam")
        assert executed.telemetry is not None
        on_disk = json.load(open(cache))
        [entry] = on_disk.values()
        assert entry["telemetry"]["events"] == FAST.n_events
        recalled = ExperimentRunner(FAST, cache_path=cache).run(
            "mcf", "i-fam")
        assert recalled.telemetry is not None
        assert recalled.telemetry["wall_s"] == \
            executed.telemetry["wall_s"]
        assert _result_to_dict(recalled) == _result_to_dict(executed)

    def test_from_dict_without_telemetry_is_none(self):
        data = _result_to_dict(ExperimentRunner(FAST).run("mg", "e-fam"))
        assert _result_from_dict(data).telemetry is None


class TestAggregation:
    def test_summary_over_memoized_runs(self):
        runner = ExperimentRunner(FAST)
        runner.run("mcf", "e-fam")
        runner.run("mg", "e-fam")
        summary = runner.telemetry_summary()
        assert summary["runs"] == 2.0
        assert summary["runs_with_telemetry"] == 2.0
        assert summary["events"] == 2.0 * FAST.n_events
        assert summary["wall_s"] > 0
        assert summary["events_per_sec"] > 0

    def test_render_telemetry(self):
        runner = ExperimentRunner(FAST)
        runner.run("mcf", "e-fam")
        text = render_telemetry(runner.telemetry_summary())
        assert "events per second" in text
        assert "tag-store probes" in text
        assert "1 of 1" in text

    def test_empty_runner_summary(self):
        summary = ExperimentRunner(FAST).telemetry_summary()
        assert summary["runs"] == 0.0
        assert summary["events_per_sec"] == 0.0
