"""Tests for statistics registries."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import Histogram, Stats, geometric_mean


class TestStats:
    def test_counters_start_at_zero(self):
        stats = Stats()
        assert stats.get("anything") == 0.0
        assert stats["anything"] == 0.0

    def test_incr_defaults_to_one(self):
        stats = Stats()
        stats.incr("hits")
        stats.incr("hits")
        assert stats["hits"] == 2.0

    def test_incr_amount(self):
        stats = Stats()
        stats.incr("bytes", 64)
        assert stats["bytes"] == 64.0

    def test_ratio(self):
        stats = Stats()
        stats.incr("hits", 3)
        stats.incr("total", 4)
        assert stats.ratio("hits", "total") == 0.75

    def test_ratio_zero_denominator(self):
        assert Stats().ratio("a", "b") == 0.0

    def test_hit_rate_helper(self):
        stats = Stats()
        stats.incr("tlb.hits", 9)
        stats.incr("tlb.misses", 1)
        assert stats.hit_rate("tlb") == 0.9

    def test_merge(self):
        a, b = Stats(), Stats()
        a.incr("x", 1)
        b.incr("x", 2)
        b.incr("y", 5)
        a.merge(b)
        assert a["x"] == 3.0
        assert a["y"] == 5.0

    def test_snapshot_is_a_copy(self):
        stats = Stats()
        stats.incr("x")
        snap = stats.snapshot()
        snap["x"] = 99
        assert stats["x"] == 1.0

    def test_contains_and_keys(self):
        stats = Stats()
        stats.incr("a")
        assert "a" in stats
        assert "b" not in stats
        assert list(stats.keys()) == ["a"]

    def test_reset(self):
        stats = Stats()
        stats.incr("a")
        stats.reset()
        assert stats["a"] == 0.0


class TestHistogram:
    def test_mean(self):
        hist = Histogram(0, 100, 10)
        for sample in (10, 20, 30):
            hist.add(sample)
        assert hist.mean == 20.0

    def test_overflow_bin(self):
        hist = Histogram(0, 10, 2)
        hist.add(100)
        assert hist.counts[-1] == 1

    def test_underflow_clamps_to_first_bin(self):
        hist = Histogram(10, 20, 2)
        hist.add(0)
        assert hist.counts[0] == 1

    def test_min_max(self):
        hist = Histogram(0, 100)
        hist.add(5)
        hist.add(95)
        assert hist.min_seen == 5
        assert hist.max_seen == 95

    def test_percentile_monotone(self):
        hist = Histogram(0, 100, 20)
        for sample in range(100):
            hist.add(sample)
        assert hist.percentile(10) <= hist.percentile(50) <= hist.percentile(90)

    def test_percentile_validation(self):
        hist = Histogram(0, 1)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_empty_percentile(self):
        assert Histogram(0, 1).percentile(50) == 0.0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(10, 10)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0),
                    min_size=1, max_size=20))
    def test_bounded_by_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9
