"""Whole-system property tests.

Hypothesis drives random workloads through complete systems and checks
invariants that must hold for *any* trace: conservation of accesses,
monotone time, translation correctness, and tenant isolation.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config.presets import small_config
from repro.core.system import FamSystem
from repro.workloads.trace import Trace


def trace_strategy(max_events=60, max_pages=64):
    """Random small traces over a bounded footprint."""
    event = st.tuples(
        st.integers(min_value=0, max_value=20),       # gap
        st.integers(min_value=0, max_value=max_pages - 1),  # page
        st.integers(min_value=0, max_value=63),       # block
        st.booleans(),                                 # write
        st.booleans(),                                 # dependent
    )
    def build(events):
        base = 0x2000_0000
        return Trace(
            "prop",
            gaps=[e[0] for e in events],
            vaddrs=[base + e[1] * 4096 + e[2] * 64 for e in events],
            writes=[e[3] for e in events],
            dependents=[e[4] and not e[3] for e in events],
        )
    return st.lists(event, min_size=1, max_size=max_events).map(build)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(trace=trace_strategy(), arch=st.sampled_from(
    ["e-fam", "i-fam", "deact-w", "deact-n"]))
def test_run_invariants(trace, arch):
    """Every run, on every architecture, satisfies the basics."""
    system = FamSystem(small_config(), arch, seed=11)
    result = system.run(trace, benchmark="prop")
    node = result.nodes[0]

    # Conservation: every trace event became exactly one access.
    assert node.memory_accesses == len(trace)
    assert node.instructions == trace.instructions

    # Time sanity.
    assert node.runtime_ns >= 0.0
    assert node.cycles >= 0.0
    if node.cycles:
        assert 0.0 < node.ipc <= 16.0  # 4 cores x 2-wide x 2 GHz bound

    # Demand paging mapped exactly the touched pages (plus nothing).
    touched = {v // 4096 for v in trace.vaddrs}
    assert system.nodes[0].page_table.mapped_pages == len(touched)

    # Hit rates are rates.
    assert 0.0 <= node.tlb_hit_rate <= 1.0
    assert 0.0 <= node.translation_hit_rate <= 1.0
    assert 0.0 <= node.acm_hit_rate <= 1.0


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(trace=trace_strategy(max_events=40))
def test_translation_consistency(trace):
    """DeACT's unverified cached translations always agree with the
    broker's authoritative system table."""
    system = FamSystem(small_config(), "deact-n", seed=11)
    system.run(trace, benchmark="prop")
    node = system.nodes[0]
    table = system.broker.system_table(0)
    cache = node.fam_translator.cache
    for node_page, entry in table.iter_mappings():
        cached = cache.lookup(node_page)
        if cached is not None:
            assert cached == entry.frame


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(trace_a=trace_strategy(max_events=30),
       trace_b=trace_strategy(max_events=30))
def test_two_tenants_never_share_frames(trace_a, trace_b):
    """Isolation holds for arbitrary workload pairs."""
    from repro.config.presets import with_nodes
    system = FamSystem(with_nodes(small_config(), 2), "i-fam", seed=11)
    system.run([trace_a, trace_b], benchmark="prop")
    frames_a = {e.frame for _v, e in
                system.broker.system_table(0).iter_mappings()}
    frames_b = {e.frame for _v, e in
                system.broker.system_table(1).iter_mappings()}
    assert not frames_a & frames_b


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(trace=trace_strategy(max_events=40))
def test_fam_census_consistent(trace):
    """The FAM's AT/non-AT split always sums to its total accesses."""
    system = FamSystem(small_config(), "deact-n", seed=11)
    result = system.run(trace, benchmark="prop")
    counters = result.fam_counters
    assert counters.get("at_accesses", 0) + \
        counters.get("non_at_accesses", 0) == counters.get("accesses", 0)
    total_by_kind = sum(value for key, value in counters.items()
                        if key.startswith("kind."))
    assert total_by_kind == counters.get("accesses", 0)
