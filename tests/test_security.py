"""End-to-end security tests: the paper's threat model.

Section II-A: a malicious application or OS on one node tries to reach
pages of other nodes/users in the shared FAM.  The system-level checks
(broker-owned metadata, STU verification) must deny every such attempt
— including ones that abuse DeACT's *unverified* node-side translation
cache, which is exactly the new attack surface the decoupling opens.
"""

import pytest

from repro.acm.metadata import PERM_RO, PERM_RW, Permission
from repro.config.presets import small_config, with_nodes
from repro.core.system import FamSystem
from repro.errors import AccessViolationError

PAGE = 4096


@pytest.fixture()
def two_node_deact():
    system = FamSystem(with_nodes(small_config(), 2), "deact-n", seed=7)
    return system


class TestCrossTenantIsolation:
    def test_forged_fam_address_denied(self, two_node_deact):
        """Node 1 presents node 0's FAM address with V=1 — the attack
        unverified caching enables; the STU must reject it."""
        system = two_node_deact
        fam_page = system.broker.allocate_for_node(0, node_page=0x100)
        with pytest.raises(AccessViolationError) as excinfo:
            system.nodes[1].stu.verify_access(fam_page * PAGE, now=0.0,
                                              needed=Permission.READ)
        assert excinfo.value.node_id == 1
        assert excinfo.value.fam_addr == fam_page * PAGE

    def test_owner_still_allowed(self, two_node_deact):
        system = two_node_deact
        fam_page = system.broker.allocate_for_node(0, node_page=0x100)
        result = system.nodes[0].stu.verify_access(
            fam_page * PAGE, now=0.0, needed=Permission.WRITE)
        assert result.allowed

    def test_unallocated_page_denied(self, two_node_deact):
        """Scanning for free pages must fail too (no entry = no
        access)."""
        system = two_node_deact
        with pytest.raises(AccessViolationError):
            system.nodes[0].stu.verify_access(123456 * PAGE, now=0.0)

    def test_acm_region_unreachable_through_layout(self, two_node_deact):
        """Addresses inside the metadata region are rejected before
        verification even consults the store."""
        from repro.errors import ConfigError
        system = two_node_deact
        layout = system.broker.layout
        with pytest.raises((AccessViolationError, ConfigError)):
            system.nodes[0].stu.verify_access(layout.metadata_base,
                                              now=0.0)


class TestUseAfterRelease:
    def test_released_page_denied_even_if_cached(self, two_node_deact):
        """Node keeps a stale (unverified) translation after the broker
        releases the page: verification must catch the stale use."""
        system = two_node_deact
        node = system.nodes[0]
        fam_page = system.broker.allocate_for_node(0, node_page=0x100)
        # Warm the node's unverified translation cache and the STU ACM.
        node.fam_translator.install(0x100, fam_page, now=0.0)
        node.stu.verify_access(fam_page * PAGE, now=0.0)
        # Broker releases the page and shoots down the STU's ACM (the
        # broker-controlled part); the node's translator entry is stale.
        system.broker.release_page(0, 0x100)
        node.stu.invalidate_fam_page(fam_page)
        assert node.fam_translator.cache.lookup(0x100) == fam_page
        with pytest.raises(AccessViolationError):
            node.stu.verify_access(fam_page * PAGE, now=1000.0)

    def test_migrated_page_denied_to_old_owner(self, two_node_deact):
        system = two_node_deact
        fam_page = system.broker.allocate_for_node(0, node_page=0x100)
        system.nodes[0].stu.verify_access(fam_page * PAGE, now=0.0)
        system.broker.migrate_node_pages(
            0, 1, on_invalidate=lambda np, fp:
            system.nodes[0].stu.invalidate_fam_page(fp))
        with pytest.raises(AccessViolationError):
            system.nodes[0].stu.verify_access(fam_page * PAGE, now=10.0)
        assert system.nodes[1].stu.verify_access(
            fam_page * PAGE, now=10.0, needed=Permission.WRITE).allowed


class TestSharedSegmentPermissions:
    def test_mixed_permissions_enforced(self, two_node_deact):
        system = two_node_deact
        segment = system.broker.create_shared_segment(
            {0: PERM_RW, 1: PERM_RO}, n_pages=4)
        addr = segment.fam_pages[0] * PAGE
        assert system.nodes[0].stu.verify_access(
            addr, now=0.0, needed=Permission.WRITE).allowed
        assert system.nodes[1].stu.verify_access(
            addr, now=0.0, needed=Permission.READ).allowed
        with pytest.raises(AccessViolationError):
            system.nodes[1].stu.verify_access(addr, now=0.0,
                                              needed=Permission.WRITE)

    def test_ungranted_node_denied_on_shared_page(self):
        system = FamSystem(with_nodes(small_config(), 3), "deact-n",
                           seed=7)
        segment = system.broker.create_shared_segment(
            {0: PERM_RW, 1: PERM_RO}, n_pages=2)
        addr = segment.fam_pages[0] * PAGE
        with pytest.raises(AccessViolationError):
            system.nodes[2].stu.verify_access(addr, now=0.0,
                                              needed=Permission.READ)

    def test_revocation_takes_effect(self, two_node_deact):
        system = two_node_deact
        segment = system.broker.create_shared_segment(
            {0: PERM_RW, 1: PERM_RO}, n_pages=2)
        addr = segment.fam_pages[0] * PAGE
        region = segment.regions[0]
        system.broker.acm.bitmap_for_region(region).revoke(1)
        system.nodes[1].stu.invalidate_fam_page(segment.fam_pages[0])
        with pytest.raises(AccessViolationError):
            system.nodes[1].stu.verify_access(addr, now=0.0,
                                              needed=Permission.READ)


class TestIFamEnforcement:
    def test_ifam_checks_against_authoritative_store(self):
        """I-FAM's coupled path still verifies functionally: a node
        whose system table somehow maps a foreign frame is caught."""
        from repro.mem.request import RequestKind

        system = FamSystem(with_nodes(small_config(), 2), "i-fam",
                           seed=7)
        victim_page = system.broker.allocate_for_node(0, node_page=0x50)
        # Corrupt node 1's system table to alias node 0's frame — the
        # bug/attack the broker-side ACM exists to catch.
        system.broker.system_table(1).map(0x60, victim_page)
        node = system.nodes[1]
        with pytest.raises(AccessViolationError):
            node.architecture.fam_access(node, 0x60 * PAGE, 0.0, False,
                                         RequestKind.DATA)


class TestHonestWorkloadsNeverViolate:
    @pytest.mark.parametrize("arch", ["i-fam", "deact-w", "deact-n"])
    def test_no_violations(self, arch):
        from repro.workloads.synthetic import PatternSpec, generate_trace
        trace = generate_trace(
            "sec", 800, 300,
            [PatternSpec("zipf", 1.0, {"alpha": 0.6})],
            gap_mean=4.0, write_fraction=0.4, dependent_fraction=0.4,
            seed=3, reuse_fraction=0.5, reuse_window=128)
        system = FamSystem(small_config(), arch, seed=7)
        system.run(trace, benchmark="sec")
        if system.nodes[0].stu is not None:
            assert system.nodes[0].stu.stats.get("violations") == 0
