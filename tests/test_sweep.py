"""Tests for the parallel sweep engine and the lock-safe result cache."""

import json
import multiprocessing
import os
import time

import pytest

from repro.config.presets import default_config
from repro.errors import CacheLockTimeout, CacheMergeConflict, ConfigError
from repro.experiments.cachefile import (
    cache_lock,
    load_cache,
    merge_into_cache,
    payloads_equivalent,
)
from repro.experiments.runner import (
    ExperimentRunner,
    RunSettings,
    SweepJob,
    _result_to_dict,
    execute_job,
    job_key,
)
from repro.experiments.sweep import (
    SWEEP_AXES,
    SweepEngine,
    SweepProgress,
    SweepSpec,
    run_jobs,
)

FAST = RunSettings(n_events=1500, footprint_scale=0.01, seed=3)


class TestSweepSpec:
    def test_defaults_cover_everything(self):
        spec = SweepSpec.build()
        assert "mcf" in spec.benchmarks
        assert set(spec.architectures) == {"e-fam", "i-fam",
                                           "deact-w", "deact-n"}
        assert spec.variants[0][0] == "default"

    def test_axis_expansion(self):
        spec = SweepSpec.build(benchmarks=["mcf"],
                               architectures=["e-fam"],
                               axes={"stu-entries": [256, 512]})
        labels = [label for label, _ in spec.variants]
        assert labels == ["stu-entries=256", "stu-entries=512"]
        assert spec.variants[0][1].stu.entries == 256
        assert len(spec) == 2

    def test_axes_cross_product(self):
        spec = SweepSpec.build(benchmarks=["mcf"],
                               architectures=["e-fam"],
                               axes={"stu-entries": [256, 512],
                                     "nodes": [1, 2]})
        labels = [label for label, _ in spec.variants]
        assert len(labels) == 4
        assert "stu-entries=256,nodes=2" in labels

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigError, match="unknown benchmark"):
            SweepSpec.build(benchmarks=["doom"])

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ConfigError, match="unknown architecture"):
            SweepSpec.build(architectures=["z-fam"])

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigError, match="unknown sweep axis"):
            SweepSpec.build(axes={"warp-factor": [9]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError, match="no values"):
            SweepSpec.build(axes={"stu-entries": []})

    def test_unparseable_axis_value_rejected(self):
        with pytest.raises(ConfigError, match="bad value 'abc'"):
            SweepSpec.build(axes={"stu-entries": ["abc"]})

    def test_every_axis_produces_distinct_config(self):
        base = default_config()
        samples = {"stu-entries": 256, "stu-associativity": 4,
                   "acm-bits": 8, "acm-subways": 1,
                   "fabric-latency-ns": 3000, "nodes": 2,
                   "allocation-policy": "contiguous"}
        assert set(samples) == set(SWEEP_AXES)
        for axis, value in samples.items():
            parse, apply = SWEEP_AXES[axis]
            assert apply(base, parse(str(value))) != base

    def test_jobs_expand_in_spec_order(self):
        spec = SweepSpec.build(benchmarks=["mcf", "canl"],
                               architectures=["e-fam"])
        cells = [cell for cell, _ in spec.jobs(FAST)]
        assert cells == [("mcf", "e-fam", "default"),
                         ("canl", "e-fam", "default")]


class TestRunJobs:
    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigError, match="jobs must be >= 1"):
            run_jobs([], 0)

    def test_results_in_input_order(self):
        jobs = [SweepJob("mcf", arch, default_config(), FAST)
                for arch in ("e-fam", "i-fam", "deact-n")]
        payloads = run_jobs(jobs, 2)
        assert [p["architecture"] for p in payloads] == \
            ["e-fam", "i-fam", "deact-n"]

    def test_progress_callback_counts_up(self):
        jobs = [SweepJob("mcf", "e-fam", default_config(), FAST)]
        seen = []
        run_jobs(jobs, 1, progress=lambda done, total: seen.append(
            (done, total)))
        assert seen == [(1, 1)]


class TestSweepEngine:
    def test_rejects_zero_jobs(self):
        with pytest.raises(ConfigError, match="jobs must be >= 1"):
            SweepEngine(FAST, jobs=0)

    def test_returns_every_cell(self):
        engine = SweepEngine(FAST, jobs=1)
        spec = SweepSpec.build(benchmarks=["mcf"],
                               architectures=["e-fam", "i-fam"])
        results = engine.run(spec)
        assert set(results) == {("mcf", "e-fam", "default"),
                                ("mcf", "i-fam", "default")}
        assert results[("mcf", "e-fam", "default")].benchmark == "mcf"

    def test_duplicate_cells_share_one_run(self):
        # Two variants with structurally identical configs produce the
        # same cache key; the engine must execute the run only once.
        config = default_config()
        spec = SweepSpec(benchmarks=("mcf",), architectures=("e-fam",),
                         variants=(("a", config), ("b", config)))
        executed = []
        engine = SweepEngine(FAST, jobs=1,
                             progress=lambda done, total: executed.append(
                                 (done, total)))
        results = engine.run(spec)
        assert executed == [(1, 1)]
        assert _result_to_dict(results[("mcf", "e-fam", "a")]) == \
            _result_to_dict(results[("mcf", "e-fam", "b")])

    def test_merges_into_cache_and_recalls(self, tmp_path):
        cache = str(tmp_path / "cache.json")
        spec = SweepSpec.build(benchmarks=["mcf"],
                               architectures=["e-fam"])
        SweepEngine(FAST, cache_path=cache, jobs=1).run(spec)
        with open(cache) as handle:
            on_disk = json.load(handle)
        job = SweepJob("mcf", "e-fam", default_config(), FAST)
        assert job_key(job) in on_disk

        executed = []
        engine = SweepEngine(FAST, cache_path=cache, jobs=1,
                             progress=lambda d, t: executed.append(d))
        recalled = engine.run(spec)
        assert executed == []  # everything came from the cache
        assert recalled[("mcf", "e-fam", "default")].benchmark == "mcf"

    def test_parallel_engine_merges_all_results(self, tmp_path):
        cache = str(tmp_path / "cache.json")
        spec = SweepSpec.build(benchmarks=["mcf", "canl"],
                               architectures=["e-fam", "i-fam"])
        results = SweepEngine(FAST, cache_path=cache, jobs=2).run(spec)
        assert len(results) == 4
        assert len(load_cache(cache)) == 4


class TestCacheFile:
    def test_load_missing_is_empty(self, tmp_path):
        assert load_cache(str(tmp_path / "nope.json")) == {}

    def test_load_garbage_is_empty_with_warning(self, tmp_path, caplog):
        path = tmp_path / "cache.json"
        path.write_text("{\"truncated\": ")
        with caplog.at_level("WARNING"):
            assert load_cache(str(path)) == {}
        assert "unreadable result cache" in caplog.text

    def test_load_non_object_is_empty_with_warning(self, tmp_path, caplog):
        path = tmp_path / "cache.json"
        path.write_text("[1, 2, 3]")
        with caplog.at_level("WARNING"):
            assert load_cache(str(path)) == {}
        assert "expected a JSON object" in caplog.text

    def test_merge_preserves_other_writers_entries(self, tmp_path):
        path = str(tmp_path / "cache.json")
        merge_into_cache(path, {"a": {"v": 1}})
        merge_into_cache(path, {"b": {"v": 2}})
        assert load_cache(path) == {"a": {"v": 1}, "b": {"v": 2}}

    def test_merge_returns_merged_view(self, tmp_path):
        path = str(tmp_path / "cache.json")
        merge_into_cache(path, {"a": {"v": 1}})
        merged = merge_into_cache(path, {"a": {"v": 3}, "b": {"v": 2}})
        assert merged == {"a": {"v": 3}, "b": {"v": 2}}

    def test_fallback_lock_serializes_writers(self, tmp_path, monkeypatch):
        # Simulate a platform without fcntl: the exclusive-create spin
        # lock must still serialize concurrent writers.
        import repro.experiments.cachefile as cachefile

        monkeypatch.setattr(cachefile, "fcntl", None)
        path = str(tmp_path / "cache.json")
        merge_into_cache(path, {"a": {"v": 1}})
        merge_into_cache(path, {"b": {"v": 2}})
        assert load_cache(path) == {"a": {"v": 1}, "b": {"v": 2}}
        assert not os.path.exists(path + ".lock")  # released
        if "fork" in multiprocessing.get_all_start_methods():
            # Forked children inherit the monkeypatched module, so the
            # hammer below exercises the fallback lock cross-process.
            with multiprocessing.get_context("fork").Pool(2) as pool:
                pool.starmap(_merge_worker, [(path, 0), (path, 1)])
            merged = load_cache(path)
            assert all(f"w{w}-k{i}" in merged
                       for w in range(2) for i in range(25))

    def test_fallback_lock_breaks_stale_lock(self, tmp_path, monkeypatch):
        import repro.experiments.cachefile as cachefile

        monkeypatch.setattr(cachefile, "fcntl", None)
        path = str(tmp_path / "cache.json")
        lock = path + ".lock"
        with open(lock, "w"):
            pass
        stale = time.time() - 120.0
        os.utime(lock, (stale, stale))
        merge_into_cache(path, {"a": {"v": 1}})  # must not deadlock
        assert load_cache(path) == {"a": {"v": 1}}

    def test_fallback_lock_times_out_without_breaking_live_lock(
            self, tmp_path, monkeypatch):
        # Regression: a *fresh* lock (live holder) that outlasts the
        # deadline must raise a timeout, never be unlinked — breaking
        # it would let two live writers race the cache file.
        import repro.experiments.cachefile as cachefile

        monkeypatch.setattr(cachefile, "fcntl", None)
        path = str(tmp_path / "cache.json")
        lock = path + ".lock"
        with open(lock, "w"):
            pass  # fresh mtime: the holder is "alive"
        with pytest.raises(CacheLockTimeout, match="live process"):
            with cache_lock(path, timeout_s=0.1):
                pass
        assert os.path.exists(lock)  # the holder's lock survived

    def test_fallback_lock_timeout_leaves_cache_untouched(
            self, tmp_path, monkeypatch):
        import repro.experiments.cachefile as cachefile

        monkeypatch.setattr(cachefile, "fcntl", None)
        path = str(tmp_path / "cache.json")
        merge_into_cache(path, {"a": {"v": 1}})
        with open(path + ".lock", "w"):
            pass
        with pytest.raises(CacheLockTimeout):
            merge_into_cache(path, {"b": {"v": 2}}, timeout_s=0.1)
        assert load_cache(path) == {"a": {"v": 1}}

    def test_posix_flock_honors_timeout(self, tmp_path):
        # The timeout contract must hold on the flock path too, not
        # just the non-fcntl fallback: a hung holder must surface as
        # CacheLockTimeout, not an eternal block.  flock locks are
        # per open file description, so a second open() in the same
        # process genuinely contends.
        fcntl = pytest.importorskip("fcntl")
        path = str(tmp_path / "cache.json")
        holder = open(path + ".lock", "w")
        try:
            fcntl.flock(holder, fcntl.LOCK_EX)
            with pytest.raises(CacheLockTimeout, match="flock"):
                with cache_lock(path, timeout_s=0.2):
                    pass
        finally:
            fcntl.flock(holder, fcntl.LOCK_UN)
            holder.close()
        with cache_lock(path, timeout_s=1.0):  # acquirable again
            pass

    def test_flock_timeout_names_live_holder(self, tmp_path):
        # Whoever acquires through cache_lock records hostname:pid in
        # the lock file; a waiter that times out reports that identity
        # so the operator knows which process to chase.  flock is per
        # open file description, so the nested acquire below genuinely
        # contends with the outer one.
        import socket

        pytest.importorskip("fcntl")
        path = str(tmp_path / "cache.json")
        me = f"{socket.gethostname()}:{os.getpid()}"
        with cache_lock(path, timeout_s=1.0):
            with pytest.raises(CacheLockTimeout) as excinfo:
                with cache_lock(path, timeout_s=0.2):
                    pass
        message = str(excinfo.value)
        assert "lock file names holder" in message
        assert me in message

    def test_fallback_timeout_names_live_holder(self, tmp_path,
                                                monkeypatch):
        import repro.experiments.cachefile as cachefile

        monkeypatch.setattr(cachefile, "fcntl", None)
        path = str(tmp_path / "cache.json")
        with open(path + ".lock", "w") as handle:
            handle.write("otherhost:12345\n")  # a fresh, live holder
        with pytest.raises(CacheLockTimeout) as excinfo:
            with cache_lock(path, timeout_s=0.1):
                pass
        assert "lock file names holder otherhost:12345" in str(
            excinfo.value)

    def test_cache_files_honor_umask(self, tmp_path):
        # mkstemp alone would leave 0600 files; other-uid readers on
        # a shared filesystem (the cross-host merge) need the mode a
        # plain open() would have produced.
        path = str(tmp_path / "cache.json")
        old_umask = os.umask(0o022)
        try:
            merge_into_cache(path, {"a": {"v": 1}})
        finally:
            os.umask(old_umask)
        assert os.stat(path).st_mode & 0o777 == 0o644

    def test_merge_conflict_warns_by_default(self, tmp_path, caplog):
        path = str(tmp_path / "cache.json")
        merge_into_cache(path, {"a": {"v": 1}})
        with caplog.at_level("WARNING"):
            merged = merge_into_cache(path, {"a": {"v": 2}})
        assert merged == {"a": {"v": 2}}  # incoming wins, loudly
        assert "different payloads" in caplog.text

    def test_merge_conflict_strict_raises_and_writes_nothing(self, tmp_path):
        path = str(tmp_path / "cache.json")
        merge_into_cache(path, {"a": {"v": 1}, "b": {"v": 2}})
        with pytest.raises(CacheMergeConflict) as excinfo:
            merge_into_cache(path, {"a": {"v": 9}, "c": {"v": 3}},
                             strict=True)
        assert excinfo.value.keys == ("a",)
        # The whole merge aborted: not even the clean key landed.
        assert load_cache(path) == {"a": {"v": 1}, "b": {"v": 2}}

    def test_merge_telemetry_difference_is_not_a_conflict(
            self, tmp_path, caplog):
        path = str(tmp_path / "cache.json")
        payload = {"architecture": "e-fam", "nodes": []}
        merge_into_cache(path, {"a": dict(payload,
                                          telemetry={"wall_s": 0.5})})
        with caplog.at_level("WARNING"):
            merge_into_cache(path, {"a": dict(payload,
                                              telemetry={"wall_s": 7.0})},
                             strict=True)
        assert "different payloads" not in caplog.text

    def test_payloads_equivalent_semantics(self):
        base = {"architecture": "e-fam", "nodes": [{"cycles": 10}]}
        assert payloads_equivalent(base, dict(base))
        assert payloads_equivalent(dict(base, telemetry={"wall_s": 1}),
                                   dict(base, telemetry={"wall_s": 2}))
        assert not payloads_equivalent(base, dict(base, architecture="x"))
        assert not payloads_equivalent(base, "not-a-dict")

    def test_merge_writes_sorted_keys_and_cleans_temp_files(self, tmp_path):
        path = str(tmp_path / "cache.json")
        merge_into_cache(path, {"zz": {"v": 1}})
        merge_into_cache(path, {"aa": {"v": 2}})
        assert list(load_cache(path)) == ["aa", "zz"]  # canonical order
        leftovers = [name for name in os.listdir(tmp_path)
                     if ".tmp." in name]
        assert leftovers == []

    def test_failed_write_cleans_its_temp_file(self, tmp_path, monkeypatch):
        # Failing *after* the temp file exists (serialization happens
        # before mkstemp now, so patch os.replace, the last step that
        # can raise) must unlink it — no .tmp. debris accumulates from
        # writers that error out instead of dying.
        import repro.experiments.cachefile as cachefile

        path = str(tmp_path / "cache.json")

        def explode(*args, **kwargs):
            raise OSError("disk on fire")

        monkeypatch.setattr(cachefile.os, "replace", explode)
        with pytest.raises(OSError):
            merge_into_cache(path, {"a": {"v": 1}})
        assert [name for name in os.listdir(tmp_path)
                if ".tmp." in name] == []

    def test_concurrent_merges_lose_nothing(self, tmp_path):
        # Hammer one cache file from several processes; every entry
        # written by any of them must survive (no torn/clobbered file).
        path = str(tmp_path / "cache.json")
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None)
        with context.Pool(4) as pool:
            pool.starmap(_merge_worker,
                         [(path, worker) for worker in range(4)])
        merged = load_cache(path)
        assert len(merged) == 4 * 25
        assert all(merged[f"w{w}-k{i}"] == {"worker": w, "item": i}
                   for w in range(4) for i in range(25))


def _merge_worker(path: str, worker: int) -> None:
    for item in range(25):
        merge_into_cache(path, {f"w{worker}-k{item}":
                                {"worker": worker, "item": item}})


class TestSweepProgress:
    def test_reports_counts_and_eta(self):
        import io

        stream = io.StringIO()
        progress = SweepProgress(stream=stream)
        progress(1, 4)
        progress(4, 4)
        lines = stream.getvalue().splitlines()
        assert lines[0].startswith("[sweep] 1/4 runs done")
        assert "eta" in lines[0]
        assert lines[-1].startswith("[sweep] 4/4 runs done")

    def test_final_update_ignores_min_interval(self):
        import io

        stream = io.StringIO()
        progress = SweepProgress(stream=stream, min_interval_s=3600.0)
        progress(1, 2)
        progress(2, 2)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2  # first + final always emit
