"""Tests for the experiment harness (runner, figures, tables,
reporting)."""

import os

import pytest

from repro.config.presets import default_config, with_stu_entries
from repro.errors import ReproError
from repro.experiments.figures import (
    ALL_FIGURES,
    figure3,
    figure12,
    figure16,
    figure_matrix,
)
from repro.experiments.report import FigureResult, Row, render_table
from repro.experiments.runner import ExperimentRunner, RunSettings, \
    _result_to_dict
from repro.experiments.tables import table1, table2, table3, table3_matrix

FAST = RunSettings(n_events=2500, footprint_scale=0.02, seed=3)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(FAST)


class TestRunner:
    def test_run_returns_result(self, runner):
        result = runner.run("mcf", "e-fam")
        assert result.benchmark == "mcf"
        assert result.architecture == "e-fam"

    def test_memoization(self, runner):
        first = runner.run("mcf", "e-fam")
        second = runner.run("mcf", "e-fam")
        assert first is second

    def test_config_variants_not_conflated(self, runner):
        base = runner.run("mcf", "i-fam")
        small_stu = runner.run("mcf", "i-fam",
                               with_stu_entries(default_config(), 256))
        assert base is not small_stu

    def test_run_matrix(self, runner):
        matrix = runner.run_matrix(["mcf"], ["e-fam", "i-fam"])
        assert set(matrix) == {("mcf", "e-fam"), ("mcf", "i-fam")}

    def test_disk_cache_roundtrip(self, tmp_path):
        path = str(tmp_path / "cache.json")
        first = ExperimentRunner(FAST, cache_path=path)
        result = first.run("mcf", "e-fam")
        assert os.path.exists(path)
        second = ExperimentRunner(FAST, cache_path=path)
        recalled = second.run("mcf", "e-fam")
        assert recalled.ipc == pytest.approx(result.ipc)
        assert recalled.fam_counters == result.fam_counters

    def test_scaled_settings(self):
        scaled = FAST.scaled(0.5)
        assert scaled.n_events == max(1000, FAST.n_events // 2)
        assert scaled.footprint_scale == FAST.footprint_scale

    def test_corrupt_disk_cache_treated_as_empty(self, tmp_path, caplog):
        # Regression: a truncated/garbage cache file used to crash
        # __init__ inside json.load.
        path = tmp_path / "cache.json"
        path.write_text("{\"(\\'mcf\\', ")  # interrupted mid-write
        with caplog.at_level("WARNING"):
            harness = ExperimentRunner(FAST, cache_path=str(path))
        assert "unreadable result cache" in caplog.text
        result = harness.run("mcf", "e-fam")
        assert result.benchmark == "mcf"
        # The rewritten cache is valid again and recalls cleanly.
        recalled = ExperimentRunner(FAST, cache_path=str(path))
        assert recalled.run("mcf", "e-fam").fam_counters == \
            result.fam_counters

    def test_rejects_zero_jobs(self):
        with pytest.raises(ReproError):
            ExperimentRunner(FAST, jobs=0)

    def test_run_matrix_parallel_matches_serial(self):
        serial = ExperimentRunner(FAST).run_matrix(
            ["mcf"], ["e-fam", "i-fam"])
        parallel = ExperimentRunner(FAST, jobs=2).run_matrix(
            ["mcf"], ["e-fam", "i-fam"])
        for key, result in serial.items():
            assert _result_to_dict(parallel[key]) == \
                _result_to_dict(result)

    def test_prewarm_executes_once_then_memoizes(self):
        harness = ExperimentRunner(FAST)
        triples = [("mcf", "e-fam", default_config())]
        assert harness.prewarm(triples) == 1
        assert harness.prewarm(triples) == 0  # memo hit, nothing to do
        result = harness.run("mcf", "e-fam")
        assert result.benchmark == "mcf"

    def test_prewarm_populates_disk_cache(self, tmp_path):
        path = str(tmp_path / "cache.json")
        harness = ExperimentRunner(FAST, cache_path=path)
        harness.prewarm([("mcf", "e-fam", default_config())])
        fresh = ExperimentRunner(FAST, cache_path=path)
        assert fresh.prewarm([("mcf", "e-fam", default_config())]) == 0


class TestFigures:
    def test_figure3_rows_and_paper_refs(self, runner):
        result = figure3(runner, benchmarks=["mcf", "sssp"])
        assert result.figure_id == "fig3"
        assert [row.label for row in result.rows] == ["mcf", "sssp"]
        assert result.value("mcf", "I-FAM") > 1.0  # I-FAM always slower
        sssp_row = result.rows[1]
        assert sssp_row.paper["I-FAM"] == 20.6

    def test_figure12_normalization(self, runner):
        result = figure12(runner, benchmarks=["mcf"])
        assert result.value("mcf", "E-FAM") == pytest.approx(1.0)
        assert result.value("mcf", "I-FAM") < 1.0

    def test_figure16_uses_node_counts(self, runner):
        result = figure16(runner, benchmarks=["pf"],
                          node_counts=(1, 2))
        assert result.series == ["1", "2"]
        assert result.rows[0].label == "pf"

    def test_registry_complete(self):
        for fig in ("3", "4", "9", "10", "11", "12", "13", "13a", "14",
                    "14s", "15", "16"):
            assert fig in ALL_FIGURES


class TestRunMatrices:
    """``figure_matrix`` must cover exactly what each figure requests:
    after prewarming the matrix, building the figure may not trigger a
    single new simulation."""

    TINY = RunSettings(n_events=1000, footprint_scale=0.01, seed=3)
    BENCHES = ["mcf", "dc"]

    @pytest.fixture(scope="class")
    def shared(self):
        return ExperimentRunner(self.TINY)

    @pytest.mark.parametrize("fig_id", sorted(ALL_FIGURES))
    def test_matrix_covers_figure(self, shared, fig_id):
        shared.prewarm(figure_matrix(fig_id, self.BENCHES))
        memo_before = set(shared._memo)
        ALL_FIGURES[fig_id](shared, benchmarks=self.BENCHES)
        assert set(shared._memo) == memo_before

    def test_matrix_covers_table3(self, shared):
        shared.prewarm(table3_matrix(self.BENCHES))
        memo_before = set(shared._memo)
        table3(shared, benchmarks=self.BENCHES)
        assert set(shared._memo) == memo_before

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            figure_matrix("99")


class TestTables:
    def test_table1_matches_paper(self):
        result = table1()
        by_label = {row.label: row.values for row in result.rows}
        assert by_label["E-FAM"]["Security"] == 0.0
        assert by_label["E-FAM"]["Performance"] == 1.0
        assert by_label["I-FAM"]["Performance"] == 0.0
        assert by_label["I-FAM"]["Security"] == 1.0
        assert by_label["DeACT"]["Performance"] == 1.0
        assert by_label["DeACT"]["Security"] == 1.0
        assert by_label["DeACT"]["Avoid OS Changes"] == 1.0

    def test_table2_lists_configuration(self):
        rendered = table2().render()
        assert "16GB" in rendered
        assert "1024 entries" in rendered

    def test_table3_with_runner_measures_mpki(self, runner):
        result = table3(runner, benchmarks=["mcf"])
        row = result.rows[0]
        assert row.paper["MPKI"] == 73.0
        assert row.values["MPKI"] > 0

    def test_table3_without_runner_paper_only(self):
        result = table3(None, benchmarks=["mcf"])
        assert "MPKI" not in result.rows[0].values


class TestReport:
    def sample(self):
        return FigureResult(
            figure_id="figX", title="Sample", series=["A", "B"],
            rows=[Row("alpha", {"A": 1.0, "B": 2.5}, {"A": 1.1}),
                  Row("beta", {"A": 3.0})],
            unit="x", notes="note text")

    def test_render_contains_everything(self):
        text = render_table(self.sample())
        assert "figX" in text and "Sample" in text
        assert "alpha" in text and "beta" in text
        assert "2.50" in text
        assert "note text" in text

    def test_missing_series_blank(self):
        text = render_table(self.sample())
        beta_line = [l for l in text.splitlines()
                     if l.startswith("beta")][0]
        assert "3.00" in beta_line

    def test_round_trip_dict(self):
        original = self.sample()
        rebuilt = FigureResult.from_dict(original.to_dict())
        assert rebuilt.figure_id == original.figure_id
        assert rebuilt.rows[0].values == original.rows[0].values
        assert rebuilt.rows[0].paper == original.rows[0].paper

    def test_series_values(self):
        assert self.sample().series_values("A") == [1.0, 3.0]

    def test_value_lookup(self):
        assert self.sample().value("alpha", "B") == 2.5
        assert self.sample().value("gamma", "B") is None


class TestGenerateExperimentsScript:
    """The regeneration script's ``--jobs`` plumbing (ROADMAP
    follow-up): flag parsing only — the full matrix is far too heavy
    for a unit test, and the pool path itself is covered by
    tests/test_sweep.py and tests/test_determinism.py."""

    @staticmethod
    def _load_script():
        import importlib.util
        import pathlib

        path = (pathlib.Path(__file__).resolve().parent.parent
                / "scripts" / "generate_experiments_md.py")
        spec = importlib.util.spec_from_file_location(
            "generate_experiments_md", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_jobs_flag_parses(self):
        module = self._load_script()
        assert module._parse_args([]).jobs == 1
        assert module._parse_args(["--jobs", "4"]).jobs == 4

    def test_non_positive_jobs_rejected(self):
        import pytest

        module = self._load_script()
        with pytest.raises(SystemExit):
            module._parse_args(["--jobs", "0"])
