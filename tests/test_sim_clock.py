"""Tests for the simulation clock."""

import pytest

from repro.errors import ConfigError
from repro.sim.clock import Clock


class TestClock:
    def test_default_is_2ghz(self):
        clock = Clock()
        assert clock.frequency_ghz == 2.0
        assert clock.period_ns == 0.5

    def test_cycles_to_ns(self):
        clock = Clock(2.0)
        assert clock.cycles_to_ns(4) == 2.0
        assert clock.cycles_to_ns(0) == 0.0

    def test_ns_to_cycles(self):
        clock = Clock(2.0)
        assert clock.ns_to_cycles(1.0) == 2.0

    def test_roundtrip(self):
        clock = Clock(3.7)
        assert clock.ns_to_cycles(clock.cycles_to_ns(123)) == pytest.approx(123)

    def test_whole_cycles_rounds_up(self):
        clock = Clock(2.0)
        assert clock.ns_to_whole_cycles(0.6) == 2  # 1.2 cycles -> 2
        assert clock.ns_to_whole_cycles(1.0) == 2  # exactly 2 cycles

    def test_one_ghz(self):
        assert Clock(1.0).period_ns == 1.0

    def test_rejects_zero_frequency(self):
        with pytest.raises(ConfigError):
            Clock(0.0)

    def test_rejects_negative_frequency(self):
        with pytest.raises(ConfigError):
            Clock(-1.0)
